//! MiniLulesh — the shock-hydrodynamics proxy of paper §V-E
//! (LULESH substitute; see DESIGN.md substitutions).
//!
//! LULESH's essential computational structure is kept:
//!
//! * a 3-D structured domain decomposed over a **perfect cube** of ranks
//!   (the paper's `n³` process requirement);
//! * a **Lagrange-leapfrog-style time step**: pressure-gradient forces →
//!   velocity update → divergence/strain → density & energy update →
//!   equation of state + artificial viscosity;
//! * a **26-neighbour ghost exchange** of four fields per step, with
//!   non-contiguous faces/edges/corners packed and unpacked by hand
//!   (exactly the packing strategy the paper describes);
//! * a global **Courant dt reduction** (allreduce min) per step.
//!
//! The physics is a cell-centered compressible-flow proxy (ideal-gas EOS,
//! Sedov-like point-blast initial condition, periodic domain) rather than
//! LULESH's full hexahedral FEM — the communication pattern, data volumes
//! and synchronization structure are the reproduced quantities.
//!
//! Two transports reproduce Fig. 8's comparison:
//! * [`Transport::TwoSided`] — `rupcxx-mpi` non-blocking `isend`/`irecv`
//!   (the paper's MPI version);
//! * [`Transport::OneSided`] — `rupcxx` one-sided puts into pre-published
//!   landing buffers with handle-less fence synchronization (the paper's
//!   UPC++ version).
//!
//! Both transports pack/unpack in identical order, so they produce
//! **bitwise identical** physics — the cross-variant correctness check.

use rupcxx::prelude::*;
use rupcxx_mpi::{MpiWorld, RecvReq, SendReq};
use rupcxx_util::Timer;
use std::sync::Arc;

const GAMMA: f64 = 1.4;
const NFIELDS: usize = 4; // p+q, u, v, w travel in the ghost exchange
const NDIRS: usize = 26;

/// Communication flavour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// One-sided UPC++-style exchange (manual pack/unpack, as the paper's
    /// UPC++ port of LULESH does).
    OneSided,
    /// Two-sided MPI-style exchange.
    TwoSided,
    /// The paper's future-work variant (§V-E): state lives in
    /// multidimensional global arrays and ghost planes move with the
    /// domain-intersecting one-sided array copy — **no explicit packing
    /// or unpacking at all**. Only the 6 faces the 7-point kernels read
    /// are exchanged. Produces bitwise-identical physics.
    PgasArrays,
}

/// Benchmark parameters.
#[derive(Clone, Copy, Debug)]
pub struct LuleshConfig {
    /// Zones per rank per dimension (paper runs 30–48³ per rank).
    pub edge: usize,
    /// Ranks per dimension; `q³` must equal the rank count.
    pub q: usize,
    /// Time steps.
    pub steps: usize,
    /// Transport variant.
    pub transport: Transport,
}

/// Result of a run.
#[derive(Clone, Copy, Debug)]
pub struct LuleshResult {
    /// Wall seconds (max over ranks).
    pub seconds: f64,
    /// Figure of merit: zone-updates per second, aggregate.
    pub fom_zps: f64,
    /// Global total energy (ρe summed over zones) — conservation check.
    pub total_energy: f64,
    /// Global maximum |velocity| — the blast is moving.
    pub max_speed: f64,
}

/// One rank's field state: `(edge+2)³` cells, ghost shell included.
struct State {
    e1: usize, // edge
    s: usize,  // stride = edge + 2
    rho: Vec<f64>,
    en: Vec<f64>,
    p: Vec<f64>,
    q: Vec<f64>,
    u: Vec<f64>,
    v: Vec<f64>,
    w: Vec<f64>,
}

impl State {
    fn new(edge: usize) -> Self {
        let s = edge + 2;
        let n = s * s * s;
        State {
            e1: edge,
            s,
            rho: vec![1.0; n],
            en: vec![1e-6; n],
            p: vec![0.0; n],
            q: vec![0.0; n],
            u: vec![0.0; n],
            v: vec![0.0; n],
            w: vec![0.0; n],
        }
    }

    #[inline]
    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.s + j) * self.s + k
    }
}

/// The 26 neighbour direction vectors, in a fixed order shared by both
/// transports (deterministic packing order).
fn directions() -> [(i64, i64, i64); NDIRS] {
    let mut dirs = [(0i64, 0i64, 0i64); NDIRS];
    let mut n = 0;
    for dx in -1..=1i64 {
        for dy in -1..=1i64 {
            for dz in -1..=1i64 {
                if (dx, dy, dz) != (0, 0, 0) {
                    dirs[n] = (dx, dy, dz);
                    n += 1;
                }
            }
        }
    }
    dirs
}

/// Index range (inclusive) of the interior slab to SEND toward `d`.
fn send_range(d: i64, edge: usize) -> (usize, usize) {
    match d {
        -1 => (1, 1),
        1 => (edge, edge),
        _ => (1, edge),
    }
}

/// Index range (inclusive) of the ghost slab to RECEIVE from `d`.
fn recv_range(d: i64, edge: usize) -> (usize, usize) {
    match d {
        -1 => (0, 0),
        1 => (edge + 1, edge + 1),
        _ => (1, edge),
    }
}

fn slab_len(dir: (i64, i64, i64), edge: usize) -> usize {
    let n = |d: i64| if d == 0 { edge } else { 1 };
    n(dir.0) * n(dir.1) * n(dir.2)
}

/// Pack the four exchanged fields for direction `dir` (deterministic
/// lexicographic order).
fn pack(st: &State, dir: (i64, i64, i64)) -> Vec<f64> {
    let (i0, i1) = send_range(dir.0, st.e1);
    let (j0, j1) = send_range(dir.1, st.e1);
    let (k0, k1) = send_range(dir.2, st.e1);
    let mut out = Vec::with_capacity(NFIELDS * slab_len(dir, st.e1));
    for i in i0..=i1 {
        for j in j0..=j1 {
            for k in k0..=k1 {
                let c = st.idx(i, j, k);
                out.push(st.p[c] + st.q[c]);
                out.push(st.u[c]);
                out.push(st.v[c]);
                out.push(st.w[c]);
            }
        }
    }
    out
}

/// Unpack a received slab from direction `dir` into the ghost shell.
/// `pq_ghost` receives the combined p+q field.
fn unpack(st: &mut State, dir: (i64, i64, i64), data: &[f64], pq_ghost: &mut [f64]) {
    let (i0, i1) = recv_range(dir.0, st.e1);
    let (j0, j1) = recv_range(dir.1, st.e1);
    let (k0, k1) = recv_range(dir.2, st.e1);
    let mut it = data.iter();
    for i in i0..=i1 {
        for j in j0..=j1 {
            for k in k0..=k1 {
                let c = st.idx(i, j, k);
                pq_ghost[c] = *it.next().expect("slab size");
                st.u[c] = *it.next().expect("slab size");
                st.v[c] = *it.next().expect("slab size");
                st.w[c] = *it.next().expect("slab size");
            }
        }
    }
    assert!(it.next().is_none(), "slab size mismatch");
}

fn rank_of(c: (i64, i64, i64), q: usize) -> usize {
    let q = q as i64;
    let wrap = |x: i64| ((x % q) + q) % q;
    (wrap(c.0) + wrap(c.1) * q + wrap(c.2) * q * q) as usize
}

fn coords_of(rank: usize, q: usize) -> (i64, i64, i64) {
    (
        (rank % q) as i64,
        ((rank / q) % q) as i64,
        (rank / (q * q)) as i64,
    )
}

/// Landing buffers for the one-sided exchange: one per incoming direction.
struct OneSidedBufs {
    /// `mine[d]` = landing buffer for data arriving from direction d.
    mine: Vec<GlobalPtr<f64>>,
    /// `dirs_of[r][d]` = rank r's landing buffer for direction d.
    all: Vec<Vec<GlobalPtr<f64>>>,
}

fn setup_one_sided(ctx: &Ctx, edge: usize) -> OneSidedBufs {
    let dirs = directions();
    let mine: Vec<GlobalPtr<f64>> = dirs
        .iter()
        .map(|&d| {
            allocate::<f64>(ctx, ctx.rank(), NFIELDS * slab_len(d, edge)).expect("landing buffer")
        })
        .collect();
    let flat: Vec<GlobalPtr<f64>> = ctx.allgatherv(&mine);
    let all: Vec<Vec<GlobalPtr<f64>>> = flat.chunks(NDIRS).map(|c| c.to_vec()).collect();
    OneSidedBufs { mine, all }
}

/// Run MiniLulesh collectively. `world` is required for the two-sided
/// transport (pass a fresh `MpiWorld` of the right size); ignored for
/// one-sided.
pub fn run(ctx: &Ctx, cfg: &LuleshConfig, world: Option<&Arc<MpiWorld>>) -> LuleshResult {
    let q = cfg.q;
    assert_eq!(q * q * q, ctx.ranks(), "ranks must be a perfect cube q³");
    let edge = cfg.edge;
    assert!(edge >= 2, "edge must be at least 2");
    if cfg.transport == Transport::PgasArrays {
        return pgas::run_pgas_arrays(ctx, cfg);
    }
    let me = ctx.rank();
    let my_c = coords_of(me, q);
    let dirs = directions();
    // Neighbour rank per direction (periodic domain).
    let nbr: Vec<usize> = dirs
        .iter()
        .map(|&(dx, dy, dz)| rank_of((my_c.0 + dx, my_c.1 + dy, my_c.2 + dz), q))
        .collect();
    // The direction index the *neighbour* sees me from (opposite dir).
    #[allow(clippy::needless_range_loop)]
    let opposite: Vec<usize> = dirs
        .iter()
        .map(|&(dx, dy, dz)| {
            dirs.iter()
                .position(|&o| o == (-dx, -dy, -dz))
                .expect("opposite direction")
        })
        .collect();

    let mut st = State::new(edge);
    // Sedov-like point blast: the rank owning the global center gets a
    // hot zone.
    let center_rank = rank_of((q as i64 / 2, q as i64 / 2, q as i64 / 2), q);
    if me == center_rank {
        let c = st.idx(edge / 2 + 1, edge / 2 + 1, edge / 2 + 1);
        st.en[c] = 1.0;
    }
    // Initial EOS.
    let ncells = st.s * st.s * st.s;
    for c in 0..ncells {
        st.p[c] = (GAMMA - 1.0) * st.rho[c] * st.en[c];
    }

    let one_sided = (cfg.transport == Transport::OneSided).then(|| setup_one_sided(ctx, edge));
    let comm = world.map(|w| w.comm(ctx));
    if cfg.transport == Transport::TwoSided {
        assert!(comm.is_some(), "TwoSided transport needs an MpiWorld");
    }

    let dx = 1.0;
    let mut dt = 0.05;
    let mut pq_ghost = vec![0.0f64; ncells];

    ctx.barrier();
    let t = Timer::start();
    for _step in 0..cfg.steps {
        // --- Ghost exchange of (p+q, u, v, w), 26 neighbours. ---
        match cfg.transport {
            Transport::TwoSided => {
                let comm = comm.as_ref().expect("checked");
                // Post all receives first (tag = direction I receive from).
                let recvs: Vec<RecvReq> =
                    (0..NDIRS).map(|d| comm.irecv(nbr[d], d as u64)).collect();
                // Pack and send: the neighbour in direction d receives my
                // slab tagged with the direction it sees me from.
                let sends: Vec<SendReq> = (0..NDIRS)
                    .map(|d| {
                        let payload = pack(&st, dirs[d]);
                        comm.isend_slice(nbr[d], opposite[d] as u64, &payload)
                    })
                    .collect();
                let arrived = comm.waitall_recvs(&recvs);
                comm.waitall_sends(&sends);
                for (d, (_, bytes)) in arrived.into_iter().enumerate() {
                    let data = rupcxx_net::pod::unpack_slice::<f64>(&bytes);
                    unpack(&mut st, dirs[d], &data, &mut pq_ghost);
                }
            }
            Transport::PgasArrays => unreachable!("dispatched to pgas::run_pgas_arrays"),
            Transport::OneSided => {
                let bufs = one_sided.as_ref().expect("checked");
                // Put my slab straight into the neighbour's landing buffer
                // for the direction it sees me from ("handle-less"
                // non-blocking one-sided, synchronized by a single fence).
                #[allow(clippy::needless_range_loop)]
                for d in 0..NDIRS {
                    let payload = pack(&st, dirs[d]);
                    bufs.all[nbr[d]][opposite[d]].rput_slice(ctx, &payload);
                }
                async_copy_fence(ctx);
                ctx.barrier();
                for (d, &dir) in dirs.iter().enumerate() {
                    let len = NFIELDS * slab_len(dir, edge);
                    let mut data = vec![0.0f64; len];
                    bufs.mine[d].rget_slice(ctx, &mut data);
                    unpack(&mut st, dir, &data, &mut pq_ghost);
                }
            }
        }
        // Interior p+q into the work array (ghosts already filled).
        for i in 1..=edge {
            for j in 1..=edge {
                for k in 1..=edge {
                    let c = st.idx(i, j, k);
                    pq_ghost[c] = st.p[c] + st.q[c];
                }
            }
        }

        // --- Lagrange leapfrog proxy step (double-buffered updates). ---
        let inv2dx = 0.5 / dx;
        let mut new_u = st.u.clone();
        let mut new_v = st.v.clone();
        let mut new_w = st.w.clone();
        let mut new_rho = st.rho.clone();
        let mut new_en = st.en.clone();
        let mut max_speed: f64 = 0.0;
        let mut max_cs: f64 = 0.0;
        for i in 1..=edge {
            for j in 1..=edge {
                for k in 1..=edge {
                    let c = st.idx(i, j, k);
                    let (xp, xm) = (st.idx(i + 1, j, k), st.idx(i - 1, j, k));
                    let (yp, ym) = (st.idx(i, j + 1, k), st.idx(i, j - 1, k));
                    let (zp, zm) = (st.idx(i, j, k + 1), st.idx(i, j, k - 1));
                    // Force: -∇(p+q)/ρ.
                    let ax = -(pq_ghost[xp] - pq_ghost[xm]) * inv2dx / st.rho[c];
                    let ay = -(pq_ghost[yp] - pq_ghost[ym]) * inv2dx / st.rho[c];
                    let az = -(pq_ghost[zp] - pq_ghost[zm]) * inv2dx / st.rho[c];
                    new_u[c] = st.u[c] + dt * ax;
                    new_v[c] = st.v[c] + dt * ay;
                    new_w[c] = st.w[c] + dt * az;
                    // Divergence of the (old) velocity field.
                    let div =
                        (st.u[xp] - st.u[xm] + st.v[yp] - st.v[ym] + st.w[zp] - st.w[zm]) * inv2dx;
                    // Continuity & energy (compression work).
                    new_rho[c] = (st.rho[c] - dt * st.rho[c] * div).max(1e-10);
                    new_en[c] = (st.en[c] - dt * (st.p[c] + st.q[c]) * div / st.rho[c]).max(1e-12);
                    let speed =
                        (new_u[c] * new_u[c] + new_v[c] * new_v[c] + new_w[c] * new_w[c]).sqrt();
                    max_speed = max_speed.max(speed);
                    // Artificial viscosity on compression.
                    st.q[c] = if div < 0.0 {
                        2.0 * new_rho[c] * div * div * dx * dx
                    } else {
                        0.0
                    };
                }
            }
        }
        st.u = new_u;
        st.v = new_v;
        st.w = new_w;
        st.rho = new_rho;
        st.en = new_en;
        // EOS.
        for i in 1..=edge {
            for j in 1..=edge {
                for k in 1..=edge {
                    let c = st.idx(i, j, k);
                    st.p[c] = (GAMMA - 1.0) * st.rho[c] * st.en[c];
                    max_cs = max_cs.max((GAMMA * st.p[c] / st.rho[c]).sqrt());
                }
            }
        }
        // --- Courant dt (global). ---
        let local_limit = 0.3 * dx / (max_cs + max_speed + 1e-12);
        let global_limit = ctx.allreduce(local_limit, f64::min);
        dt = (dt * 1.1).min(global_limit).min(0.05);
    }
    ctx.barrier();
    let seconds = ctx.allreduce(t.seconds(), f64::max);

    // Diagnostics.
    let mut local_energy = 0.0;
    let mut local_speed: f64 = 0.0;
    for i in 1..=edge {
        for j in 1..=edge {
            for k in 1..=edge {
                let c = st.idx(i, j, k);
                local_energy += st.rho[c] * st.en[c]
                    + 0.5 * st.rho[c] * (st.u[c] * st.u[c] + st.v[c] * st.v[c] + st.w[c] * st.w[c]);
                local_speed = local_speed
                    .max((st.u[c] * st.u[c] + st.v[c] * st.v[c] + st.w[c] * st.w[c]).sqrt());
            }
        }
    }
    let total_energy = ctx.allreduce(local_energy, |a, b| a + b);
    let max_speed = ctx.allreduce(local_speed, f64::max);

    ctx.barrier();
    if let Some(bufs) = one_sided {
        for p in bufs.mine {
            deallocate(ctx, p);
        }
    }
    let zones = (edge * edge * edge * ctx.ranks()) as f64;
    LuleshResult {
        seconds,
        fom_zps: zones * cfg.steps as f64 / seconds,
        total_energy,
        max_speed,
    }
}

/// The pack-free variant: state in multidimensional global arrays.
mod pgas {
    use super::*;
    use rupcxx_ndarray::{pt, LocalGrid, NdArray, Point, RectDomain};

    /// Periodic pull of the 6 face ghost planes of `arr` from the
    /// neighbours' interiors (translating wrapped neighbours into this
    /// rank's ghost coordinate frame).
    fn exchange_faces(
        ctx: &Ctx,
        arr: &NdArray<f64, 3>,
        dirs: &[NdArray<f64, 3>],
        interior: RectDomain<3>,
        my_c: (i64, i64, i64),
        q: usize,
        edge: usize,
    ) {
        let (qi, ei) = (q as i64, edge as i64);
        for dim in 0..3usize {
            for side in [-1i8, 1] {
                let mut nc = [my_c.0, my_c.1, my_c.2];
                nc[dim] += side as i64;
                let mut shift = Point::<3>::zero();
                if nc[dim] < 0 || nc[dim] >= qi {
                    // Periodic wrap: the neighbour's block sits a full
                    // domain length away in this rank's coordinates.
                    shift[dim] = side as i64 * qi * ei;
                }
                let nb = rank_of((nc[0], nc[1], nc[2]), q);
                let src = dirs[nb].translate(shift);
                arr.copy_ghost_from(ctx, &src, interior, dim, side, 1);
            }
        }
    }

    pub(super) fn run_pgas_arrays(ctx: &Ctx, cfg: &LuleshConfig) -> LuleshResult {
        let q = cfg.q;
        let edge = cfg.edge;
        let me = ctx.rank();
        let my_c = coords_of(me, q);
        let ei = edge as i64;
        let lo = pt![my_c.0 * ei, my_c.1 * ei, my_c.2 * ei];
        let interior = RectDomain::new(lo, lo + Point::splat(ei));
        let halo = RectDomain::new(lo - Point::ones(), lo + Point::splat(ei + 1));

        // Global arrays: p+q (single buffer) and double-buffered u, v, w.
        let pq_arr = NdArray::<f64, 3>::new(ctx, halo);
        let vel: Vec<NdArray<f64, 3>> = (0..6).map(|_| NdArray::<f64, 3>::new(ctx, halo)).collect();
        pq_arr.fill(ctx, 0.0);
        for a in &vel {
            a.fill(ctx, 0.0);
        }
        let pq_dirs: Vec<NdArray<f64, 3>> = ctx.allgatherv(&[pq_arr]);
        let vel_dirs: Vec<Vec<NdArray<f64, 3>>> =
            (0..6).map(|k| ctx.allgatherv(&[vel[k]])).collect();

        // Rank-local zonal state (never needs ghosts): same layout and
        // initialization as the packing variants.
        let mut st = State::new(edge);
        let center_rank = rank_of((q as i64 / 2, q as i64 / 2, q as i64 / 2), q);
        if me == center_rank {
            let c = st.idx(edge / 2 + 1, edge / 2 + 1, edge / 2 + 1);
            st.en[c] = 1.0;
        }
        let ncells = st.s * st.s * st.s;
        for c in 0..ncells {
            st.p[c] = (GAMMA - 1.0) * st.rho[c] * st.en[c];
        }

        let dx = 1.0;
        let mut dt = 0.05;
        ctx.barrier();
        let t = Timer::start();
        for step in 0..cfg.steps {
            let cur = step % 2; // velocity buffer indices: cur*3..cur*3+3
            let nxt = 1 - cur;
            // Publish interior p+q into the global array — the *only*
            // data movement besides the array copies; no pack/unpack.
            let pq_g = LocalGrid::<f64, 3>::new(ctx, &pq_arr);
            for i in 0..ei {
                for j in 0..ei {
                    for k in 0..ei {
                        let c = st.idx(i as usize + 1, j as usize + 1, k as usize + 1);
                        pq_g.put(lo[0] + i, lo[1] + j, lo[2] + k, st.p[c] + st.q[c]);
                    }
                }
            }
            ctx.barrier();
            // Face ghost exchange, one-sided, domain-intersecting.
            exchange_faces(ctx, &pq_arr, &pq_dirs, interior, my_c, q, edge);
            for k in 0..3 {
                exchange_faces(
                    ctx,
                    &vel[cur * 3 + k],
                    &vel_dirs[cur * 3 + k],
                    interior,
                    my_c,
                    q,
                    edge,
                );
            }
            // Kernel: identical arithmetic/order to the packing variants.
            let u_g = LocalGrid::<f64, 3>::new(ctx, &vel[cur * 3]);
            let v_g = LocalGrid::<f64, 3>::new(ctx, &vel[cur * 3 + 1]);
            let w_g = LocalGrid::<f64, 3>::new(ctx, &vel[cur * 3 + 2]);
            let un_g = LocalGrid::<f64, 3>::new(ctx, &vel[nxt * 3]);
            let vn_g = LocalGrid::<f64, 3>::new(ctx, &vel[nxt * 3 + 1]);
            let wn_g = LocalGrid::<f64, 3>::new(ctx, &vel[nxt * 3 + 2]);
            let inv2dx = 0.5 / dx;
            let mut new_rho = st.rho.clone();
            let mut new_en = st.en.clone();
            let mut max_speed: f64 = 0.0;
            let mut max_cs: f64 = 0.0;
            for li in 1..=edge {
                for lj in 1..=edge {
                    for lk in 1..=edge {
                        let c = st.idx(li, lj, lk);
                        let (gi, gj, gk) = (
                            lo[0] + li as i64 - 1,
                            lo[1] + lj as i64 - 1,
                            lo[2] + lk as i64 - 1,
                        );
                        let ax = -(pq_g.at(gi + 1, gj, gk) - pq_g.at(gi - 1, gj, gk)) * inv2dx
                            / st.rho[c];
                        let ay = -(pq_g.at(gi, gj + 1, gk) - pq_g.at(gi, gj - 1, gk)) * inv2dx
                            / st.rho[c];
                        let az = -(pq_g.at(gi, gj, gk + 1) - pq_g.at(gi, gj, gk - 1)) * inv2dx
                            / st.rho[c];
                        un_g.put(gi, gj, gk, u_g.at(gi, gj, gk) + dt * ax);
                        vn_g.put(gi, gj, gk, v_g.at(gi, gj, gk) + dt * ay);
                        wn_g.put(gi, gj, gk, w_g.at(gi, gj, gk) + dt * az);
                        let div = (u_g.at(gi + 1, gj, gk) - u_g.at(gi - 1, gj, gk)
                            + v_g.at(gi, gj + 1, gk)
                            - v_g.at(gi, gj - 1, gk)
                            + w_g.at(gi, gj, gk + 1)
                            - w_g.at(gi, gj, gk - 1))
                            * inv2dx;
                        new_rho[c] = (st.rho[c] - dt * st.rho[c] * div).max(1e-10);
                        new_en[c] =
                            (st.en[c] - dt * (st.p[c] + st.q[c]) * div / st.rho[c]).max(1e-12);
                        let (nu, nv, nw) = (
                            un_g.at(gi, gj, gk),
                            vn_g.at(gi, gj, gk),
                            wn_g.at(gi, gj, gk),
                        );
                        let speed = (nu * nu + nv * nv + nw * nw).sqrt();
                        max_speed = max_speed.max(speed);
                        st.q[c] = if div < 0.0 {
                            2.0 * new_rho[c] * div * div * dx * dx
                        } else {
                            0.0
                        };
                    }
                }
            }
            st.rho = new_rho;
            st.en = new_en;
            for i in 1..=edge {
                for j in 1..=edge {
                    for k in 1..=edge {
                        let c = st.idx(i, j, k);
                        st.p[c] = (GAMMA - 1.0) * st.rho[c] * st.en[c];
                        max_cs = max_cs.max((GAMMA * st.p[c] / st.rho[c]).sqrt());
                    }
                }
            }
            let local_limit = 0.3 * dx / (max_cs + max_speed + 1e-12);
            let global_limit = ctx.allreduce(local_limit, f64::min);
            dt = (dt * 1.1).min(global_limit).min(0.05);
        }
        ctx.barrier();
        let seconds = ctx.allreduce(t.seconds(), f64::max);

        // Diagnostics: velocities live in the arrays (buffer parity of the
        // last completed step).
        let cur = cfg.steps % 2;
        let u_g = LocalGrid::<f64, 3>::new(ctx, &vel[cur * 3]);
        let v_g = LocalGrid::<f64, 3>::new(ctx, &vel[cur * 3 + 1]);
        let w_g = LocalGrid::<f64, 3>::new(ctx, &vel[cur * 3 + 2]);
        let mut local_energy = 0.0;
        let mut local_speed: f64 = 0.0;
        for li in 1..=edge {
            for lj in 1..=edge {
                for lk in 1..=edge {
                    let c = st.idx(li, lj, lk);
                    let (gi, gj, gk) = (
                        lo[0] + li as i64 - 1,
                        lo[1] + lj as i64 - 1,
                        lo[2] + lk as i64 - 1,
                    );
                    let (u, v, w) = (u_g.at(gi, gj, gk), v_g.at(gi, gj, gk), w_g.at(gi, gj, gk));
                    local_energy +=
                        st.rho[c] * st.en[c] + 0.5 * st.rho[c] * (u * u + v * v + w * w);
                    local_speed = local_speed.max((u * u + v * v + w * w).sqrt());
                }
            }
        }
        let total_energy = ctx.allreduce(local_energy, |a, b| a + b);
        let max_speed = ctx.allreduce(local_speed, f64::max);
        ctx.barrier();
        pq_arr.destroy(ctx);
        for a in vel {
            a.destroy(ctx);
        }
        let zones = (edge * edge * edge * ctx.ranks()) as f64;
        LuleshResult {
            seconds,
            fom_zps: zones * cfg.steps as f64 / seconds,
            total_energy,
            max_speed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rupcxx_runtime::{spmd, RuntimeConfig};

    fn rt(n: usize) -> RuntimeConfig {
        RuntimeConfig::new(n).segment_mib(4)
    }

    fn cfg(edge: usize, q: usize, steps: usize, transport: Transport) -> LuleshConfig {
        LuleshConfig {
            edge,
            q,
            steps,
            transport,
        }
    }

    #[test]
    fn transports_produce_identical_physics() {
        let one = spmd(rt(8), |ctx| {
            run(ctx, &cfg(4, 2, 5, Transport::OneSided), None)
        });
        let world = MpiWorld::new(8);
        let two = spmd(rt(8), move |ctx| {
            run(ctx, &cfg(4, 2, 5, Transport::TwoSided), Some(&world))
        });
        assert_eq!(one[0].total_energy, two[0].total_energy, "bitwise equal");
        assert_eq!(one[0].max_speed, two[0].max_speed);
    }

    #[test]
    fn pgas_arrays_variant_is_bitwise_identical() {
        // The pack-free multidimensional-array variant (the paper's §V-E
        // future work) must reproduce the packing variants exactly.
        let packed = spmd(rt(8), |ctx| {
            run(ctx, &cfg(4, 2, 5, Transport::OneSided), None)
        });
        let arrays = spmd(rt(8), |ctx| {
            run(ctx, &cfg(4, 2, 5, Transport::PgasArrays), None)
        });
        assert_eq!(packed[0].total_energy, arrays[0].total_energy);
        assert_eq!(packed[0].max_speed, arrays[0].max_speed);
    }

    #[test]
    fn pgas_arrays_single_rank_periodic() {
        let a = spmd(rt(1), |ctx| {
            run(ctx, &cfg(6, 1, 6, Transport::OneSided), None)
        });
        let b = spmd(rt(1), |ctx| {
            run(ctx, &cfg(6, 1, 6, Transport::PgasArrays), None)
        });
        assert_eq!(a[0].total_energy, b[0].total_energy);
    }

    #[test]
    fn multirank_matches_single_rank() {
        // Same global domain (8³ zones): 1 rank of edge 8 vs 8 ranks of
        // edge 4. Double-buffered updates make the arithmetic identical.
        let single = spmd(rt(1), |ctx| {
            run(ctx, &cfg(8, 1, 4, Transport::OneSided), None)
        });
        let multi = spmd(rt(8), |ctx| {
            run(ctx, &cfg(4, 2, 4, Transport::OneSided), None)
        });
        let (a, b) = (single[0].total_energy, multi[0].total_energy);
        assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn blast_wave_moves_and_energy_stays_bounded() {
        let out = spmd(rt(1), |ctx| {
            run(ctx, &cfg(8, 1, 10, Transport::OneSided), None)
        });
        let r = out[0];
        assert!(r.max_speed > 0.0, "blast must accelerate material");
        assert!(r.total_energy.is_finite());
        // Initial total energy ≈ 1 (hot zone) + background; the proxy
        // integrator is not exactly conservative but must stay bounded.
        assert!(r.total_energy > 0.1 && r.total_energy < 10.0);
        assert!(r.fom_zps > 0.0);
    }

    #[test]
    #[should_panic(expected = "perfect cube")]
    fn non_cube_rank_count_rejected() {
        spmd(rt(2), |ctx| {
            run(ctx, &cfg(4, 2, 1, Transport::OneSided), None);
        });
    }

    #[test]
    fn directions_are_26_unique_with_opposites() {
        let dirs = directions();
        let set: std::collections::HashSet<_> = dirs.iter().collect();
        assert_eq!(set.len(), 26);
        for d in dirs {
            assert!(dirs.contains(&(-d.0, -d.1, -d.2)));
        }
    }

    #[test]
    fn periodic_rank_arithmetic() {
        assert_eq!(rank_of((-1, 0, 0), 2), 1);
        assert_eq!(rank_of((2, 0, 0), 2), 0);
        for r in 0..27 {
            let c = coords_of(r, 3);
            assert_eq!(rank_of(c, 3), r);
        }
    }
}
