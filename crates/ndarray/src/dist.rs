//! Distributed multidimensional arrays — the paper's declared future
//! work, built exactly as §III-E anticipates: "multidimensional arrays can
//! be composed with shared arrays to build such a directory … In the
//! future, we plan to take further advantage of this capability by
//! building true distributed multidimensional arrays on top of the
//! current non-distributed library."
//!
//! A [`DistArray<T, N>`] block-partitions a global rectangular domain over
//! an N-dimensional process grid. Each rank owns one block (stored as an
//! [`NdArray`] with an optional ghost shell); a replicated directory of
//! descriptors makes any element reachable one-sided from any rank, and
//! [`DistArray::exchange_ghosts`] performs the full nearest-neighbour
//! halo exchange with the library's strided one-sided copies.

use crate::array::NdArray;
use crate::domain::RectDomain;
use crate::point::Point;
use rupcxx_net::{Pod, Rank};
use rupcxx_runtime::Ctx;

/// A block-distributed N-dimensional array over all ranks.
pub struct DistArray<T: Pod, const N: usize> {
    global: RectDomain<N>,
    pgrid: [usize; N],
    ghost: i64,
    /// Directory of every rank's block (domain = interior ∪ ghosts).
    parts: Vec<NdArray<T, N>>,
    /// This rank's interior (ghost-free) domain.
    interior: RectDomain<N>,
}

/// Partition `extent` points over `parts` blocks: block `i` covers
/// `[i*extent/parts, (i+1)*extent/parts)`.
fn block_bounds(extent: i64, parts: usize, i: usize) -> (i64, i64) {
    let p = parts as i64;
    ((i as i64 * extent) / p, ((i as i64 + 1) * extent) / p)
}

/// Index of the block containing offset `x` under [`block_bounds`].
fn block_index(x: i64, extent: i64, parts: usize) -> usize {
    let p = parts as i64;
    let mut i = ((x * p) / extent).clamp(0, p - 1);
    loop {
        let (lo, hi) = block_bounds(extent, parts, i as usize);
        if x < lo {
            i -= 1;
        } else if x >= hi {
            i += 1;
        } else {
            return i as usize;
        }
    }
}

impl<T: Pod, const N: usize> DistArray<T, N> {
    /// Collectively create a distributed array over `global` (unit
    /// stride), block-partitioned over `pgrid` (must multiply to the rank
    /// count), with `ghost ≥ 0` ghost layers around each block. All ranks
    /// must pass identical arguments.
    pub fn new(ctx: &Ctx, global: RectDomain<N>, pgrid: [usize; N], ghost: i64) -> Self {
        assert_eq!(
            pgrid.iter().product::<usize>(),
            ctx.ranks(),
            "process grid must cover all ranks"
        );
        assert_eq!(
            global.stride(),
            Point::ones(),
            "unit-stride global domains only"
        );
        assert!(ghost >= 0);
        let my_coords = Self::coords_of(ctx.rank(), &pgrid);
        let mut lo = global.lo();
        let mut hi = global.hi();
        for d in 0..N {
            let extent = global.hi()[d] - global.lo()[d];
            assert!(
                extent as usize >= pgrid[d],
                "dimension {d} has fewer points than process-grid slots"
            );
            let (b_lo, b_hi) = block_bounds(extent, pgrid[d], my_coords[d]);
            lo[d] = global.lo()[d] + b_lo;
            hi[d] = global.lo()[d] + b_hi;
        }
        let interior = RectDomain::new(lo, hi);
        let halo = RectDomain::new(lo - Point::splat(ghost), hi + Point::splat(ghost));
        let mine = NdArray::<T, N>::new(ctx, halo);
        let parts: Vec<NdArray<T, N>> = ctx.allgatherv(&[mine]);
        DistArray {
            global,
            pgrid,
            ghost,
            parts,
            interior,
        }
    }

    /// Process-grid coordinates of `rank` (dim 0 fastest).
    fn coords_of(rank: Rank, pgrid: &[usize; N]) -> [usize; N] {
        let mut c = [0usize; N];
        let mut r = rank;
        for d in 0..N {
            c[d] = r % pgrid[d];
            r /= pgrid[d];
        }
        c
    }

    fn rank_of_coords(&self, coords: [usize; N]) -> Rank {
        let mut r = 0;
        let mut stride = 1;
        for d in 0..N {
            r += coords[d] * stride;
            stride *= self.pgrid[d];
        }
        r
    }

    /// The global index domain.
    pub fn global_domain(&self) -> RectDomain<N> {
        self.global
    }

    /// This rank's ghost-free block.
    pub fn interior(&self) -> RectDomain<N> {
        self.interior
    }

    /// This rank's block as an array view (interior plus ghost shell) —
    /// use for fast local computation ([`crate::LocalGrid`] works on it).
    pub fn local(&self) -> NdArray<T, N> {
        self.parts[self.my_rank()]
    }

    fn my_rank(&self) -> Rank {
        // The directory entry whose interior equals ours identifies us;
        // stored implicitly: recompute from the interior's low corner.
        self.owner_of(self.interior.lo())
    }

    /// The rank owning global point `p`.
    pub fn owner_of(&self, p: Point<N>) -> Rank {
        assert!(self.global.contains(p), "point {p} outside {}", self.global);
        let mut coords = [0usize; N];
        for d in 0..N {
            let extent = self.global.hi()[d] - self.global.lo()[d];
            coords[d] = block_index(p[d] - self.global.lo()[d], extent, self.pgrid[d]);
        }
        self.rank_of_coords(coords)
    }

    /// One-sided global read of element `p` (any rank may call).
    pub fn get(&self, ctx: &Ctx, p: Point<N>) -> T {
        self.parts[self.owner_of(p)].get(ctx, p)
    }

    /// One-sided global write of element `p` (any rank may call).
    pub fn set(&self, ctx: &Ctx, p: Point<N>, value: T) {
        self.parts[self.owner_of(p)].set(ctx, p, value)
    }

    /// Initialize this rank's interior from `f` (collective-style use:
    /// every rank initializes its own block).
    pub fn fill_interior_with(&self, ctx: &Ctx, mut f: impl FnMut(Point<N>) -> T) {
        let mine = self.local();
        self.interior.for_each(|p| mine.set(ctx, p, f(p)));
    }

    /// Pull every ghost slab of this rank's block from the neighbouring
    /// blocks, one-sided (the halo exchange). Non-periodic: ghost slabs
    /// outside the global domain are left untouched. Requires `ghost > 0`.
    /// Call collectively with a barrier before computing (the usual
    /// exchange-then-compute discipline).
    pub fn exchange_ghosts(&self, ctx: &Ctx) {
        assert!(self.ghost > 0, "array created without ghost layers");
        let mine = self.local();
        let my_coords = Self::coords_of(self.my_rank(), &self.pgrid);
        for d in 0..N {
            for side in [-1i8, 1] {
                let mut nc = my_coords;
                let next = nc[d] as i64 + side as i64;
                if next < 0 || next >= self.pgrid[d] as i64 {
                    continue; // physical boundary
                }
                nc[d] = next as usize;
                let nb = self.rank_of_coords(nc);
                // Pull the full slab (the neighbour's interior covers it
                // along dim d; the orthogonal extent of my ghost slab may
                // also include corner regions owned by *diagonal*
                // neighbours — restrict to the face neighbour's interior
                // and fetch corners in later dims' passes from the
                // already-updated ghost data... simplest correct policy:
                // clip to the neighbour's interior).
                let ghost_dom = self.interior.exterior_face(d, side, self.ghost);
                let src_view = self.parts[nb].restrict(self.parts[nb].domain());
                let clipped = ghost_dom.intersect(&self.neighbour_coverage(nb));
                if !clipped.is_empty() {
                    mine.restrict(clipped).copy_from(ctx, &src_view);
                }
            }
        }
    }

    /// The interior domain of rank `r` (from the directory geometry).
    fn neighbour_coverage(&self, r: Rank) -> RectDomain<N> {
        let coords = Self::coords_of(r, &self.pgrid);
        let mut lo = self.global.lo();
        let mut hi = self.global.hi();
        for d in 0..N {
            let extent = self.global.hi()[d] - self.global.lo()[d];
            let (b_lo, b_hi) = block_bounds(extent, self.pgrid[d], coords[d]);
            lo[d] = self.global.lo()[d] + b_lo;
            hi[d] = self.global.lo()[d] + b_hi;
        }
        RectDomain::new(lo, hi)
    }

    /// Read the whole global array (lexicographic order) — for tests and
    /// small outputs; O(global size) one-sided reads.
    pub fn to_global_vec(&self, ctx: &Ctx) -> Vec<T> {
        let mut out = Vec::with_capacity(self.global.size());
        self.global.for_each(|p| out.push(self.get(ctx, p)));
        out
    }

    /// Collectively destroy the array (every rank frees its block).
    pub fn destroy(self, ctx: &Ctx) {
        ctx.barrier();
        self.parts[self.my_rank()].destroy(ctx);
        ctx.barrier();
    }
}

impl<T: Pod, const N: usize> std::fmt::Debug for DistArray<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DistArray<{}, {N}>(global {}, pgrid {:?}, ghost {})",
            std::any::type_name::<T>(),
            self.global,
            self.pgrid,
            self.ghost
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pt, rd};
    use rupcxx_runtime::{spmd, RuntimeConfig};

    fn cfg(n: usize) -> RuntimeConfig {
        RuntimeConfig::new(n).segment_mib(2)
    }

    #[test]
    fn block_bounds_partition_exactly() {
        for extent in [1i64, 5, 16, 17, 100] {
            for parts in [1usize, 2, 3, 7] {
                if (extent as usize) < parts {
                    continue;
                }
                let mut covered = 0;
                for i in 0..parts {
                    let (lo, hi) = block_bounds(extent, parts, i);
                    assert!(lo <= hi);
                    covered += hi - lo;
                    for x in lo..hi {
                        assert_eq!(block_index(x, extent, parts), i, "x={x}");
                    }
                }
                assert_eq!(covered, extent);
            }
        }
    }

    #[test]
    fn global_set_get_roundtrip_2d() {
        spmd(cfg(4), |ctx| {
            let a = DistArray::<i64, 2>::new(ctx, rd!([0, 0]..[10, 7]), [2, 2], 0);
            // Each rank writes its own interior.
            a.fill_interior_with(ctx, |p| p[0] * 100 + p[1]);
            ctx.barrier();
            // Every rank reads every element.
            a.global_domain().for_each(|p| {
                assert_eq!(a.get(ctx, p), p[0] * 100 + p[1], "{p}");
            });
            ctx.barrier();
            a.destroy(ctx);
        });
    }

    #[test]
    fn remote_writes_land_on_owner() {
        spmd(cfg(2), |ctx| {
            let a = DistArray::<u64, 1>::new(ctx, rd!([0]..[10]), [2], 0);
            ctx.barrier();
            if ctx.rank() == 0 {
                // Write the *other* rank's half.
                for x in 5..10 {
                    a.set(ctx, pt![x], x as u64 * 7);
                }
            }
            ctx.barrier();
            if ctx.rank() == 1 {
                assert_eq!(a.owner_of(pt![7]), 1);
                for x in 5..10i64 {
                    assert_eq!(a.local().get(ctx, pt![x]), x as u64 * 7);
                }
            }
            ctx.barrier();
            a.destroy(ctx);
        });
    }

    #[test]
    fn ghost_exchange_matches_neighbours_3d() {
        spmd(cfg(8), |ctx| {
            let a = DistArray::<f64, 3>::new(ctx, rd!([0, 0, 0]..[8, 8, 8]), [2, 2, 2], 1);
            a.fill_interior_with(ctx, |p| (p[0] * 64 + p[1] * 8 + p[2]) as f64);
            ctx.barrier();
            a.exchange_ghosts(ctx);
            ctx.barrier();
            // Every face-adjacent ghost cell of my block holds the global
            // value (corner/edge ghosts are out of scope for face passes).
            let mine = a.local();
            let interior = a.interior();
            for d in 0..3usize {
                for side in [-1i8, 1] {
                    let ghost = interior.exterior_face(d, side, 1);
                    let clipped = ghost.intersect(&a.global_domain());
                    clipped.for_each(|p| {
                        assert_eq!(
                            mine.get(ctx, p),
                            (p[0] * 64 + p[1] * 8 + p[2]) as f64,
                            "ghost {p} dim {d} side {side}"
                        );
                    });
                }
            }
            ctx.barrier();
            a.destroy(ctx);
        });
    }

    #[test]
    fn uneven_partition_1d() {
        spmd(cfg(3), |ctx| {
            // 10 points over 3 ranks: blocks of 3/3/4 (block_bounds math).
            let a = DistArray::<u64, 1>::new(ctx, rd!([0]..[10]), [3], 0);
            let sizes = ctx.allgatherv(&[a.interior().size() as u64]);
            assert_eq!(sizes.iter().sum::<u64>(), 10);
            assert!(sizes.iter().all(|&s| s >= 3));
            a.fill_interior_with(ctx, |p| p[0] as u64 + 1);
            ctx.barrier();
            let all = a.to_global_vec(ctx);
            assert_eq!(all, (1..=10).collect::<Vec<u64>>());
            ctx.barrier();
            a.destroy(ctx);
        });
    }

    #[test]
    fn distributed_stencil_smoke_test() {
        // One Jacobi sweep through DistArray equals the serial sweep.
        let expected = {
            // Serial: 6x6 grid, average of 4 neighbours (zero boundary).
            let n = 6usize;
            let at = |v: &Vec<f64>, i: i64, j: i64| {
                if i < 0 || j < 0 || i >= n as i64 || j >= n as i64 {
                    0.0
                } else {
                    v[(i as usize) * n + j as usize]
                }
            };
            let init: Vec<f64> = (0..n * n).map(|k| k as f64).collect();
            let mut out = vec![0.0; n * n];
            for i in 0..n as i64 {
                for j in 0..n as i64 {
                    out[(i as usize) * n + j as usize] = 0.25
                        * (at(&init, i + 1, j)
                            + at(&init, i - 1, j)
                            + at(&init, i, j + 1)
                            + at(&init, i, j - 1));
                }
            }
            out
        };
        let out = spmd(cfg(4), |ctx| {
            let a = DistArray::<f64, 2>::new(ctx, rd!([0, 0]..[6, 6]), [2, 2], 1);
            let b = DistArray::<f64, 2>::new(ctx, rd!([0, 0]..[6, 6]), [2, 2], 0);
            // Zero ghosts everywhere first (boundary condition), then the
            // interior values.
            a.local().fill(ctx, 0.0);
            a.fill_interior_with(ctx, |p| (p[0] * 6 + p[1]) as f64);
            ctx.barrier();
            a.exchange_ghosts(ctx);
            ctx.barrier();
            let src = a.local();
            let dst = b.local();
            a.interior().for_each(|p| {
                let v = 0.25
                    * (src.get(ctx, p + pt![1, 0])
                        + src.get(ctx, p - pt![1, 0])
                        + src.get(ctx, p + pt![0, 1])
                        + src.get(ctx, p - pt![0, 1]));
                dst.set(ctx, p, v);
            });
            ctx.barrier();
            let result = b.to_global_vec(ctx);
            ctx.barrier();
            a.destroy(ctx);
            b.destroy(ctx);
            result
        });
        for r in out {
            assert_eq!(r.len(), expected.len());
            for (got, want) in r.iter().zip(&expected) {
                assert!((got - want).abs() < 1e-12, "{got} vs {want}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "process grid must cover")]
    fn wrong_pgrid_rejected() {
        spmd(cfg(3), |ctx| {
            let _ = DistArray::<u64, 2>::new(ctx, rd!([0, 0]..[4, 4]), [2, 2], 0);
        });
    }
}
