//! Fast local access to rank-resident grids — the "compiled" indexing path.
//!
//! The paper's Stencil port (§V-B) gets Titanium-level performance by
//! (a) declaring arrays with matching logical and physical stride
//! (`unstrided`), bypassing stride divisions, and (b) indexing one
//! dimension at a time so the compiler lifts indexing logic out of inner
//! loops. [`LocalGrid`] is the same optimization for `rupcxx`: it
//! pre-resolves the segment and base offset once and exposes inlined
//! word-granular accessors with precomputed per-dimension strides, so the
//! inner stencil loop compiles to address arithmetic plus a relaxed atomic
//! load — no fabric dispatch, no stats, no division.
//!
//! The generic [`NdArray::get`]/[`NdArray::set`] path (used in benchmarks
//! as the "library/generic" variant) pays those costs per access; the
//! difference between the two is exactly the ablation the paper discusses.

use crate::array::NdArray;
use crate::point::Point;
use rupcxx_net::{Pod, Segment};
use rupcxx_runtime::Ctx;

/// A word-element local accessor over an [`NdArray`] owned by the calling
/// rank. Element type must be 8 bytes (`f64`/`u64`/`i64`).
pub struct LocalGrid<'a, T: Pod, const N: usize> {
    seg: &'a Segment,
    /// Base byte offset of the mapping origin in the segment.
    base: usize,
    map_lo: Point<N>,
    phys: Point<N>,
    lo: Point<N>,
    hi: Point<N>,
    _elem: std::marker::PhantomData<fn() -> T>,
}

impl<'a, T: Pod, const N: usize> LocalGrid<'a, T, N> {
    /// Build the fast accessor. Panics unless the array is owned by the
    /// calling rank, unstrided, and has 8-byte elements.
    pub fn new(ctx: &'a Ctx, arr: &NdArray<T, N>) -> Self {
        assert_eq!(
            arr.owner(),
            ctx.rank(),
            "LocalGrid requires a rank-local array"
        );
        assert!(
            arr.is_unstrided(),
            "LocalGrid requires matching logical and physical stride"
        );
        assert_eq!(std::mem::size_of::<T>(), 8, "LocalGrid needs word elements");
        LocalGrid {
            seg: &ctx.fabric().endpoint(ctx.rank()).segment,
            base: arr.base.offset(),
            map_lo: arr.map_lo,
            phys: arr.phys,
            lo: arr.domain().lo(),
            hi: arr.domain().hi(),
            _elem: std::marker::PhantomData,
        }
    }

    /// Lower bound of the accessible domain.
    pub fn lo(&self) -> Point<N> {
        self.lo
    }

    /// Exclusive upper bound of the accessible domain.
    pub fn hi(&self) -> Point<N> {
        self.hi
    }

    #[inline(always)]
    fn byte_offset(&self, p: Point<N>) -> usize {
        let mut idx = 0i64;
        for d in 0..N {
            debug_assert!(p[d] >= self.lo[d] && p[d] < self.hi[d]);
            idx += (p[d] - self.map_lo[d]) * self.phys[d];
        }
        self.base + idx as usize * 8
    }

    /// Read the element at `p`.
    #[inline(always)]
    pub fn get(&self, p: Point<N>) -> T {
        T::read_from(&self.seg.load_u64(self.byte_offset(p)).to_le_bytes())
    }

    /// Write the element at `p`.
    #[inline(always)]
    pub fn set(&self, p: Point<N>, value: T) {
        let mut w = [0u8; 8];
        value.write_to(&mut w);
        self.seg
            .store_u64(self.byte_offset(p), u64::from_le_bytes(w));
    }
}

impl<'a, T: Pod> LocalGrid<'a, T, 3> {
    /// 3-D accessor with per-dimension indexing — the paper's
    /// `B[i][j][k]` style. Precomputed strides; inner dimension advances
    /// by one word.
    #[inline(always)]
    pub fn at(&self, i: i64, j: i64, k: i64) -> T {
        let idx = (i - self.map_lo[0]) * self.phys[0]
            + (j - self.map_lo[1]) * self.phys[1]
            + (k - self.map_lo[2]);
        T::read_from(
            &self
                .seg
                .load_u64(self.base + idx as usize * 8)
                .to_le_bytes(),
        )
    }

    /// 3-D per-dimension store.
    #[inline(always)]
    pub fn put(&self, i: i64, j: i64, k: i64, value: T) {
        let idx = (i - self.map_lo[0]) * self.phys[0]
            + (j - self.map_lo[1]) * self.phys[1]
            + (k - self.map_lo[2]);
        let mut w = [0u8; 8];
        value.write_to(&mut w);
        self.seg
            .store_u64(self.base + idx as usize * 8, u64::from_le_bytes(w));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pt, rd};
    use rupcxx_runtime::{spmd, RuntimeConfig};

    fn cfg() -> RuntimeConfig {
        RuntimeConfig::new(1).segment_bytes(1 << 20)
    }

    #[test]
    fn local_grid_agrees_with_generic_path() {
        spmd(cfg(), |ctx| {
            let a = NdArray::<f64, 3>::new(ctx, rd!([-1, -1, -1]..[5, 5, 5]));
            a.fill_with(ctx, |p| (p[0] * 36 + p[1] * 6 + p[2]) as f64);
            let g = LocalGrid::new(ctx, &a);
            a.domain().for_each(|p| {
                assert_eq!(g.get(p), a.get(ctx, p));
                assert_eq!(g.at(p[0], p[1], p[2]), a.get(ctx, p));
            });
            g.set(pt![0, 0, 0], 777.0);
            assert_eq!(a.get(ctx, pt![0, 0, 0]), 777.0);
            g.put(1, 1, 1, -3.5);
            assert_eq!(a.get(ctx, pt![1, 1, 1]), -3.5);
            a.destroy(ctx);
        });
    }

    #[test]
    #[should_panic(expected = "rank-local")]
    fn remote_array_rejected() {
        spmd(RuntimeConfig::new(2).segment_bytes(1 << 16), |ctx| {
            let a = NdArray::<f64, 2>::new(ctx, rd!([0, 0]..[2, 2]));
            let dirs: Vec<NdArray<f64, 2>> = ctx.allgatherv(&[a]);
            let other = dirs[1 - ctx.rank()];
            let _ = LocalGrid::new(ctx, &other);
        });
    }

    #[test]
    #[should_panic(expected = "matching logical and physical stride")]
    fn strided_array_rejected() {
        spmd(cfg(), |ctx| {
            let a = NdArray::<f64, 2>::new(ctx, rd!([0, 0] .. [8, 8]; [2, 2]));
            let _ = LocalGrid::new(ctx, &a);
        });
    }
}
