//! Rectangular domains (paper §III-E): lower bound, exclusive upper bound,
//! stride — plus the domain calculus (intersection, translation, border
//! and shrink for ghost zones, unordered iteration).

use crate::point::Point;
use rupcxx_net::Pod;

/// A strided rectangular index domain:
/// `{ lo + k∘stride | 0 ≤ (lo + k∘stride) < hi componentwise }`.
///
/// Upper bounds are **exclusive**, following the paper (footnote 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RectDomain<const N: usize> {
    lo: Point<N>,
    hi: Point<N>,
    stride: Point<N>,
}

// SAFETY: three `Point<N>` (i.e. `[i64; N]`) fields — no padding, all bit
// patterns valid.
unsafe impl<const N: usize> Pod for RectDomain<N> {}

impl<const N: usize> RectDomain<N> {
    /// Unit-stride domain `[lo, hi)`.
    pub fn new(lo: Point<N>, hi: Point<N>) -> Self {
        Self::strided(lo, hi, Point::ones())
    }

    /// Strided domain. All strides must be positive.
    pub fn strided(lo: Point<N>, hi: Point<N>, stride: Point<N>) -> Self {
        for d in 0..N {
            assert!(stride[d] > 0, "stride must be positive in dim {d}");
        }
        RectDomain { lo, hi, stride }
    }

    /// Lower bound (inclusive).
    pub fn lo(&self) -> Point<N> {
        self.lo
    }

    /// Upper bound (exclusive).
    pub fn hi(&self) -> Point<N> {
        self.hi
    }

    /// Per-dimension stride.
    pub fn stride(&self) -> Point<N> {
        self.stride
    }

    /// Number of points along dimension `d`.
    pub fn extent(&self, d: usize) -> usize {
        if self.hi[d] <= self.lo[d] {
            0
        } else {
            ((self.hi[d] - self.lo[d] + self.stride[d] - 1) / self.stride[d]) as usize
        }
    }

    /// Total number of points.
    pub fn size(&self) -> usize {
        (0..N).map(|d| self.extent(d)).product()
    }

    /// True when the domain contains no points.
    pub fn is_empty(&self) -> bool {
        self.size() == 0
    }

    /// Membership test (point must lie on the stride lattice).
    pub fn contains(&self, p: Point<N>) -> bool {
        (0..N).all(|d| {
            p[d] >= self.lo[d] && p[d] < self.hi[d] && (p[d] - self.lo[d]) % self.stride[d] == 0
        })
    }

    /// Intersection (the paper's `rd1 * rd2`). Both domains must have equal
    /// strides and aligned lattices for an exact result; this covers the
    /// ghost-zone uses in the paper. Panics on incompatible lattices.
    pub fn intersect(&self, other: &Self) -> Self {
        for d in 0..N {
            assert_eq!(
                self.stride[d], other.stride[d],
                "intersect: stride mismatch in dim {d}"
            );
            assert_eq!(
                (self.lo[d] - other.lo[d]) % self.stride[d],
                0,
                "intersect: lattice misalignment in dim {d}"
            );
        }
        RectDomain {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
            stride: self.stride,
        }
    }

    /// Smallest domain containing both (bounding box — the paper's
    /// `rd1 + rd2`). Requires equal, aligned strides.
    pub fn bounding_union(&self, other: &Self) -> Self {
        for d in 0..N {
            assert_eq!(self.stride[d], other.stride[d], "union: stride mismatch");
        }
        RectDomain {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            stride: self.stride,
        }
    }

    /// Domain translated by `t`.
    pub fn translate(&self, t: Point<N>) -> Self {
        RectDomain {
            lo: self.lo + t,
            hi: self.hi + t,
            stride: self.stride,
        }
    }

    /// Domain shrunk by `k` points on **both** sides of every dimension —
    /// the interior of a grid with ghost width `k` (Titanium's `shrink`).
    pub fn shrink(&self, k: i64) -> Self {
        let mut lo = self.lo;
        let mut hi = self.hi;
        for d in 0..N {
            lo[d] += k * self.stride[d];
            hi[d] -= k * self.stride[d];
        }
        RectDomain {
            lo,
            hi,
            stride: self.stride,
        }
    }

    /// The slab of thickness `k` on the `side` of dimension `dim`
    /// just **inside** the domain (`side = -1` → low face, `+1` → high
    /// face). Used to select the data to send to a neighbour.
    pub fn interior_face(&self, dim: usize, side: i8, k: i64) -> Self {
        let mut lo = self.lo;
        let mut hi = self.hi;
        let s = self.stride[dim];
        if side < 0 {
            hi[dim] = lo[dim] + k * s;
        } else {
            lo[dim] = hi[dim] - k * s;
        }
        RectDomain {
            lo,
            hi,
            stride: self.stride,
        }
    }

    /// The slab of thickness `k` just **outside** the domain on the `side`
    /// of dimension `dim` (Titanium's `border`) — a ghost region.
    pub fn exterior_face(&self, dim: usize, side: i8, k: i64) -> Self {
        let mut lo = self.lo;
        let mut hi = self.hi;
        let s = self.stride[dim];
        if side < 0 {
            hi[dim] = lo[dim];
            lo[dim] -= k * s;
        } else {
            lo[dim] = hi[dim];
            hi[dim] += k * s;
        }
        RectDomain {
            lo,
            hi,
            stride: self.stride,
        }
    }

    /// Permute the dimensions of the domain.
    pub fn permute(&self, perm: [usize; N]) -> Self {
        RectDomain {
            lo: self.lo.permute(perm),
            hi: self.hi.permute(perm),
            stride: self.stride.permute(perm),
        }
    }

    /// Unordered iteration over every point (the paper's `foreach`):
    /// sequential on the calling rank, lexicographic order.
    pub fn for_each(&self, mut body: impl FnMut(Point<N>)) {
        if self.is_empty() {
            return;
        }
        let mut p = self.lo;
        loop {
            body(p);
            // Lexicographic increment, last dimension fastest.
            let mut d = N;
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                p[d] += self.stride[d];
                if p[d] < self.hi[d] {
                    break;
                }
                p[d] = self.lo[d];
                if d == 0 {
                    return;
                }
            }
        }
    }

    /// Iterator over every point (allocating the points lazily).
    pub fn points(&self) -> impl Iterator<Item = Point<N>> + '_ {
        let total = self.size();
        let dom = *self;
        (0..total).map(move |mut idx| {
            let mut p = dom.lo;
            for d in (0..N).rev() {
                let e = dom.extent(d);
                p[d] = dom.lo[d] + (idx % e) as i64 * dom.stride[d];
                idx /= e;
            }
            p
        })
    }

    /// Rows of the domain: iterate all dims except the last, yielding the
    /// row's starting point and its length along the last dimension.
    /// The unit of the one-sided array copy.
    pub fn rows(&self) -> Vec<(Point<N>, usize)> {
        if self.is_empty() {
            return Vec::new();
        }
        let row_len = self.extent(N - 1);
        let mut heads = Vec::with_capacity(self.size() / row_len.max(1));
        // Iterate the domain collapsed to its first N-1 dims.
        let mut head_dom = *self;
        head_dom.hi[N - 1] = head_dom.lo[N - 1] + 1;
        head_dom.for_each(|p| heads.push((p, row_len)));
        heads
    }
}

impl<const N: usize> std::fmt::Display for RectDomain<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}:{}", self.lo, self.hi, self.stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pt, rd};

    #[test]
    fn size_and_extent() {
        let d = rd!([0, 0]..[4, 6]);
        assert_eq!(d.size(), 24);
        assert_eq!(d.extent(0), 4);
        assert_eq!(d.extent(1), 6);
        // Paper's strided example: [(1,2,3), (5,6,7), stride (1,1,2)].
        let s = rd!([1, 2, 3] .. [5, 6, 7]; [1, 1, 2]);
        assert_eq!(s.extent(2), 2);
        assert_eq!(s.size(), 4 * 4 * 2);
    }

    #[test]
    fn empty_domains() {
        let d = rd!([3, 3]..[3, 5]);
        assert!(d.is_empty());
        assert_eq!(d.size(), 0);
        let mut count = 0;
        d.for_each(|_| count += 1);
        assert_eq!(count, 0);
        assert!(d.rows().is_empty());
    }

    #[test]
    fn contains_respects_lattice() {
        let d = rd!([0, 0] .. [10, 10]; [2, 3]);
        assert!(d.contains(pt![0, 0]));
        assert!(d.contains(pt![2, 3]));
        assert!(!d.contains(pt![1, 3]));
        assert!(!d.contains(pt![2, 2]));
        assert!(!d.contains(pt![10, 0]));
        assert!(!d.contains(pt![-2, 0]));
    }

    #[test]
    fn intersect_and_union() {
        let a = rd!([0, 0]..[6, 6]);
        let b = rd!([3, 2]..[9, 5]);
        let i = a.intersect(&b);
        assert_eq!(i, rd!([3, 2]..[6, 5]));
        let u = a.bounding_union(&b);
        assert_eq!(u, rd!([0, 0]..[9, 6]));
        // Disjoint intersection is empty.
        let c = rd!([10, 10]..[12, 12]);
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn translate_shrink_faces() {
        let d = rd!([0, 0, 0]..[10, 10, 10]);
        assert_eq!(d.translate(pt![1, -1, 2]), rd!([1, -1, 2]..[11, 9, 12]));
        assert_eq!(d.shrink(1), rd!([1, 1, 1]..[9, 9, 9]));
        // Interior faces: the planes we send to neighbours.
        assert_eq!(
            d.shrink(1).interior_face(0, -1, 1),
            rd!([1, 1, 1]..[2, 9, 9])
        );
        assert_eq!(
            d.shrink(1).interior_face(0, 1, 1),
            rd!([8, 1, 1]..[9, 9, 9])
        );
        // Exterior faces: the ghost slabs we receive into.
        assert_eq!(
            d.shrink(1).exterior_face(2, 1, 1),
            rd!([1, 1, 9]..[9, 9, 10])
        );
        assert_eq!(
            d.shrink(1).exterior_face(2, -1, 1),
            rd!([1, 1, 0]..[9, 9, 1])
        );
    }

    #[test]
    fn for_each_visits_lexicographically() {
        let d = rd!([0, 0]..[2, 3]);
        let mut seen = vec![];
        d.for_each(|p| seen.push((p[0], p[1])));
        assert_eq!(seen, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
    }

    #[test]
    fn points_matches_for_each() {
        let d = rd!([1, 2] .. [9, 9]; [1, 3]);
        let mut via_foreach = vec![];
        d.for_each(|p| via_foreach.push(p));
        let via_points: Vec<_> = d.points().collect();
        assert_eq!(via_foreach, via_points);
        assert_eq!(via_points.len(), d.size());
    }

    #[test]
    fn rows_cover_domain() {
        let d = rd!([0, 0, 0]..[2, 3, 4]);
        let rows = d.rows();
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|&(_, len)| len == 4));
        let total: usize = rows.iter().map(|&(_, l)| l).sum();
        assert_eq!(total, d.size());
    }

    #[test]
    fn permute_domain() {
        let d = rd!([0, 1, 2]..[4, 5, 6]);
        let p = d.permute([2, 0, 1]);
        assert_eq!(p, rd!([2, 0, 1]..[6, 4, 5]));
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        let _ = RectDomain::strided(pt![0], pt![4], pt![0]);
    }

    #[test]
    fn one_dimensional_domain() {
        let d = rd!([5]..[9]);
        assert_eq!(d.size(), 4);
        let pts: Vec<i64> = d.points().map(|p| p[0]).collect();
        assert_eq!(pts, vec![5, 6, 7, 8]);
    }
}
