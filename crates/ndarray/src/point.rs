//! Points: coordinates in N-dimensional space (paper §III-E).

use rupcxx_net::Pod;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A point in N-dimensional integer space — Titanium's `[1, 2, 3]`,
/// UPC++'s `POINT(1, 2, 3)`, here `pt![1, 2, 3]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point<const N: usize> {
    coords: [i64; N],
}

// SAFETY: `[i64; N]` has no padding and every bit pattern is valid.
unsafe impl<const N: usize> Pod for Point<N> {}

impl<const N: usize> Point<N> {
    /// Construct from coordinates.
    pub const fn new(coords: [i64; N]) -> Self {
        Point { coords }
    }

    /// The point with every coordinate equal to `v`.
    pub const fn splat(v: i64) -> Self {
        Point { coords: [v; N] }
    }

    /// The origin.
    pub const fn zero() -> Self {
        Self::splat(0)
    }

    /// The all-ones point (the default stride).
    pub const fn ones() -> Self {
        Self::splat(1)
    }

    /// Dimensionality.
    pub const fn arity(&self) -> usize {
        N
    }

    /// Raw coordinates.
    pub fn coords(&self) -> [i64; N] {
        self.coords
    }

    /// Unit vector along `dim`.
    pub fn unit(dim: usize) -> Self {
        let mut c = [0i64; N];
        c[dim] = 1;
        Point { coords: c }
    }

    /// Componentwise minimum.
    pub fn min(self, other: Self) -> Self {
        let mut c = self.coords;
        for d in 0..N {
            c[d] = c[d].min(other.coords[d]);
        }
        Point { coords: c }
    }

    /// Componentwise maximum.
    pub fn max(self, other: Self) -> Self {
        let mut c = self.coords;
        for d in 0..N {
            c[d] = c[d].max(other.coords[d]);
        }
        Point { coords: c }
    }

    /// True when every coordinate of `self` is < the corresponding
    /// coordinate of `other`.
    pub fn all_lt(self, other: Self) -> bool {
        (0..N).all(|d| self.coords[d] < other.coords[d])
    }

    /// True when every coordinate of `self` is ≤ the corresponding
    /// coordinate of `other`.
    pub fn all_le(self, other: Self) -> bool {
        (0..N).all(|d| self.coords[d] <= other.coords[d])
    }

    /// Replace coordinate `dim` with `v`.
    pub fn with(mut self, dim: usize, v: i64) -> Self {
        self.coords[dim] = v;
        self
    }

    /// Remove coordinate `dim`, lowering the arity by one (used by array
    /// slicing). `M` must equal `N - 1`.
    pub fn drop_dim<const M: usize>(self, dim: usize) -> Point<M> {
        assert_eq!(M, N - 1, "drop_dim arity mismatch");
        let mut c = [0i64; M];
        let mut j = 0;
        for d in 0..N {
            if d != dim {
                c[j] = self.coords[d];
                j += 1;
            }
        }
        Point::new(c)
    }

    /// Permute coordinates: result[d] = self[perm[d]].
    pub fn permute(self, perm: [usize; N]) -> Self {
        let mut c = [0i64; N];
        for d in 0..N {
            c[d] = self.coords[perm[d]];
        }
        Point { coords: c }
    }
}

impl<const N: usize> Index<usize> for Point<N> {
    type Output = i64;
    fn index(&self, d: usize) -> &i64 {
        &self.coords[d]
    }
}

impl<const N: usize> IndexMut<usize> for Point<N> {
    fn index_mut(&mut self, d: usize) -> &mut i64 {
        &mut self.coords[d]
    }
}

impl<const N: usize> Add for Point<N> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        let mut c = self.coords;
        for d in 0..N {
            c[d] += rhs.coords[d];
        }
        Point { coords: c }
    }
}

impl<const N: usize> Sub for Point<N> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        let mut c = self.coords;
        for d in 0..N {
            c[d] -= rhs.coords[d];
        }
        Point { coords: c }
    }
}

impl<const N: usize> Mul<i64> for Point<N> {
    type Output = Self;
    fn mul(self, k: i64) -> Self {
        let mut c = self.coords;
        for v in &mut c {
            *v *= k;
        }
        Point { coords: c }
    }
}

impl<const N: usize> Neg for Point<N> {
    type Output = Self;
    fn neg(self) -> Self {
        let mut c = self.coords;
        for v in &mut c {
            *v = -*v;
        }
        Point { coords: c }
    }
}

impl<const N: usize> std::fmt::Display for Point<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (d, c) in self.coords.iter().enumerate() {
            if d > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pt;

    #[test]
    fn constructors_and_macro() {
        let p = pt![1, 2, 3];
        assert_eq!(p.coords(), [1, 2, 3]);
        assert_eq!(Point::<3>::zero().coords(), [0; 3]);
        assert_eq!(Point::<2>::splat(4).coords(), [4, 4]);
        assert_eq!(Point::<3>::unit(1).coords(), [0, 1, 0]);
        assert_eq!(p.arity(), 3);
    }

    #[test]
    fn arithmetic() {
        let a = pt![1, 2];
        let b = pt![10, 20];
        assert_eq!(a + b, pt![11, 22]);
        assert_eq!(b - a, pt![9, 18]);
        assert_eq!(a * 3, pt![3, 6]);
        assert_eq!(-a, pt![-1, -2]);
    }

    #[test]
    fn comparisons_min_max() {
        let a = pt![1, 5];
        let b = pt![2, 3];
        assert_eq!(a.min(b), pt![1, 3]);
        assert_eq!(a.max(b), pt![2, 5]);
        assert!(!a.all_lt(b));
        assert!(pt![1, 2].all_lt(pt![2, 3]));
        assert!(pt![1, 3].all_le(pt![1, 3]));
    }

    #[test]
    fn indexing_and_with() {
        let mut p = pt![7, 8, 9];
        assert_eq!(p[2], 9);
        p[0] = 1;
        assert_eq!(p, pt![1, 8, 9]);
        assert_eq!(p.with(1, 5), pt![1, 5, 9]);
    }

    #[test]
    fn drop_dim_and_permute() {
        let p = pt![10, 20, 30];
        assert_eq!(p.drop_dim::<2>(1), pt![10, 30]);
        assert_eq!(p.drop_dim::<2>(0), pt![20, 30]);
        assert_eq!(p.permute([2, 0, 1]), pt![30, 10, 20]);
    }

    #[test]
    fn display() {
        assert_eq!(pt![1, -2].to_string(), "[1, -2]");
    }

    #[test]
    fn pod_roundtrip() {
        let p = pt![5, -6, 7];
        let b = p.to_bytes();
        assert_eq!(Point::<3>::read_from(&b), p);
    }
}
