//! Multidimensional global arrays over rectangular domains (paper §III-E).
//!
//! An [`NdArray<T, N>`] is a descriptor: owning rank + storage base +
//! index-space mapping + current view domain. The elements live on a single
//! rank (possibly remote); *views* — [`restrict`](NdArray::restrict),
//! [`slice`](NdArray::slice), [`translate`](NdArray::translate),
//! [`permute`](NdArray::permute) — reinterpret the same storage without
//! copying, exactly as in Titanium/UPC++.
//!
//! The descriptor is itself [`Pod`], so arrays compose with
//! `rupcxx::SharedArray` to build the paper's directory of per-rank grids:
//! `shared_array<ndarray<int,3>> dir(THREADS)` (§III-E) works verbatim as
//! `SharedArray::<NdArray<f64, 3>>::new(ctx, ranks, 1)`.

use crate::domain::RectDomain;
use crate::point::Point;
use rupcxx::GlobalPtr;
use rupcxx_net::{GlobalAddr, Pod, Rank};
use rupcxx_runtime::Ctx;
use std::marker::PhantomData;

/// A (possibly remote) N-dimensional array over a rectangular domain.
pub struct NdArray<T: Pod, const N: usize> {
    /// Storage base: element at the mapping origin.
    pub(crate) base: GlobalAddr,
    /// Logical coordinate mapped to physical index 0.
    pub(crate) map_lo: Point<N>,
    /// Lattice stride of the storage mapping (a "matching logical and
    /// physical stride" array — the paper's `unstrided` — has all ones).
    pub(crate) map_stride: Point<N>,
    /// Physical element stride per dimension (row-major at creation).
    pub(crate) phys: Point<N>,
    /// Current view domain.
    pub(crate) domain: RectDomain<N>,
    pub(crate) _elem: PhantomData<fn() -> T>,
}

impl<T: Pod, const N: usize> Clone for NdArray<T, N> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Pod, const N: usize> Copy for NdArray<T, N> {}

// SAFETY: all fields are `GlobalAddr` (two usize) / `Point` ([i64; N]) —
// 8-byte aligned, no padding, every bit pattern valid; PhantomData is a ZST.
unsafe impl<T: Pod, const N: usize> Pod for NdArray<T, N> {}

impl<T: Pod, const N: usize> NdArray<T, N> {
    /// Allocate a fresh array over `domain` in the calling rank's segment
    /// (the paper's `ARRAY(T, (...))`). Contents are unspecified until
    /// written; see [`NdArray::fill`].
    pub fn new(ctx: &Ctx, domain: RectDomain<N>) -> Self {
        let elems = domain.size().max(1);
        let bytes = elems * std::mem::size_of::<T>();
        let base = ctx
            .alloc_on(ctx.rank(), bytes)
            .expect("segment memory for NdArray");
        // Row-major physical strides from the domain extents.
        let mut phys = Point::<N>::zero();
        let mut acc = 1i64;
        for d in (0..N).rev() {
            phys[d] = acc;
            acc *= domain.extent(d) as i64;
        }
        NdArray {
            base,
            map_lo: domain.lo(),
            map_stride: domain.stride(),
            phys,
            domain,
            _elem: PhantomData,
        }
    }

    /// The view's domain.
    pub fn domain(&self) -> RectDomain<N> {
        self.domain
    }

    /// The rank owning the storage.
    pub fn owner(&self) -> Rank {
        self.base.rank()
    }

    /// True when the storage mapping has matching logical and physical
    /// stride (no division needed to index) — the paper's `unstrided`
    /// template specialization.
    pub fn is_unstrided(&self) -> bool {
        self.map_stride == Point::ones()
    }

    /// Physical element index of logical point `p` (no bounds check).
    #[inline]
    pub(crate) fn phys_index(&self, p: Point<N>) -> i64 {
        let mut idx = 0i64;
        if self.is_unstrided() {
            for d in 0..N {
                idx += (p[d] - self.map_lo[d]) * self.phys[d];
            }
        } else {
            for d in 0..N {
                idx += ((p[d] - self.map_lo[d]) / self.map_stride[d]) * self.phys[d];
            }
        }
        idx
    }

    /// Global pointer to the element at `p` (bounds-checked against the
    /// view domain).
    pub fn addr_of(&self, p: Point<N>) -> GlobalPtr<T> {
        assert!(
            self.domain.contains(p),
            "NdArray index {p} outside domain {}",
            self.domain
        );
        let idx = self.phys_index(p);
        debug_assert!(idx >= 0);
        GlobalPtr::from_addr(self.base.add(idx as usize * std::mem::size_of::<T>()))
    }

    /// Read the element at `p` (one-sided if remote) — `array[pt]`.
    pub fn get(&self, ctx: &Ctx, p: Point<N>) -> T {
        self.addr_of(p).rget(ctx)
    }

    /// Write the element at `p` (one-sided if remote).
    pub fn set(&self, ctx: &Ctx, p: Point<N>, value: T) {
        self.addr_of(p).rput(ctx, value)
    }

    /// Restrict the view to `dom ∩ domain` (the paper's
    /// `A.constrict(ghost_domain)`): same storage, smaller index space.
    pub fn restrict(&self, dom: RectDomain<N>) -> Self {
        let mut out = *self;
        out.domain = self.domain.intersect(&dom);
        out
    }

    /// Shift the view's index space by `t`: point `p + t` of the result
    /// refers to point `p` of `self`.
    pub fn translate(&self, t: Point<N>) -> Self {
        let mut out = *self;
        out.domain = self.domain.translate(t);
        out.map_lo = self.map_lo + t;
        out
    }

    /// Reorder dimensions: point `q` of the result refers to point
    /// `q.permute(perm)`... precisely, result dimension `d` is source
    /// dimension `perm[d]`.
    pub fn permute(&self, perm: [usize; N]) -> Self {
        NdArray {
            base: self.base,
            map_lo: self.map_lo.permute(perm),
            map_stride: self.map_stride.permute(perm),
            phys: self.phys.permute(perm),
            domain: self.domain.permute(perm),
            _elem: PhantomData,
        }
    }

    /// Fill the entire view with `value` (local or one-sided).
    pub fn fill(&self, ctx: &Ctx, value: T) {
        self.domain.for_each(|p| self.set(ctx, p, value));
    }

    /// Initialize each element from `f(p)`.
    pub fn fill_with(&self, ctx: &Ctx, mut f: impl FnMut(Point<N>) -> T) {
        self.domain.for_each(|p| self.set(ctx, p, f(p)));
    }

    /// Read the view out in lexicographic point order.
    pub fn to_vec(&self, ctx: &Ctx) -> Vec<T> {
        let mut out = Vec::with_capacity(self.domain.size());
        self.domain.for_each(|p| out.push(self.get(ctx, p)));
        out
    }

    /// Free the storage. Call exactly once per *allocation* (not per view),
    /// from any rank.
    pub fn destroy(self, ctx: &Ctx) {
        ctx.free(self.base);
    }
}

macro_rules! impl_slice {
    ($n:literal => $m:literal) => {
        impl<T: Pod> NdArray<T, $n> {
            /// Slice at `coord` along `dim`, producing a view one
            /// dimension lower (the paper's `(N-1)`-dimensional view of an
            /// N-dimensional array).
            pub fn slice(&self, dim: usize, coord: i64) -> NdArray<T, $m> {
                assert!(
                    coord >= self.domain.lo()[dim] && coord < self.domain.hi()[dim],
                    "slice coordinate {coord} outside domain {} in dim {dim}",
                    self.domain
                );
                let steps = (coord - self.map_lo[dim]) / self.map_stride[dim];
                let base = self
                    .base
                    .add((steps * self.phys[dim]) as usize * std::mem::size_of::<T>());
                NdArray {
                    base,
                    map_lo: self.map_lo.drop_dim::<$m>(dim),
                    map_stride: self.map_stride.drop_dim::<$m>(dim),
                    phys: self.phys.drop_dim::<$m>(dim),
                    domain: RectDomain::strided(
                        self.domain.lo().drop_dim::<$m>(dim),
                        self.domain.hi().drop_dim::<$m>(dim),
                        self.domain.stride().drop_dim::<$m>(dim),
                    ),
                    _elem: PhantomData,
                }
            }
        }
    };
}

impl_slice!(2 => 1);
impl_slice!(3 => 2);
impl_slice!(4 => 3);

impl<T: Pod, const N: usize> std::fmt::Debug for NdArray<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "NdArray<{}, {N}>(rank {}, domain {})",
            std::any::type_name::<T>(),
            self.base.rank(),
            self.domain
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pt, rd};
    use rupcxx_runtime::{spmd, RuntimeConfig};

    fn cfg(n: usize) -> RuntimeConfig {
        RuntimeConfig::new(n).segment_bytes(1 << 20)
    }

    #[test]
    fn fill_and_read_back_2d() {
        spmd(cfg(1), |ctx| {
            let a = NdArray::<f64, 2>::new(ctx, rd!([0, 0]..[4, 5]));
            a.fill_with(ctx, |p| (p[0] * 10 + p[1]) as f64);
            assert_eq!(a.get(ctx, pt![0, 0]), 0.0);
            assert_eq!(a.get(ctx, pt![3, 4]), 34.0);
            assert_eq!(a.get(ctx, pt![2, 1]), 21.0);
            a.destroy(ctx);
        });
    }

    #[test]
    fn negative_bounds_domains() {
        spmd(cfg(1), |ctx| {
            let a = NdArray::<i64, 2>::new(ctx, rd!([-2, -2]..[2, 2]));
            a.fill_with(ctx, |p| p[0] * 100 + p[1]);
            assert_eq!(a.get(ctx, pt![-2, -2]), -202);
            assert_eq!(a.get(ctx, pt![1, -1]), 99);
            a.destroy(ctx);
        });
    }

    #[test]
    fn strided_array_indexing() {
        spmd(cfg(1), |ctx| {
            // Paper's array literal: domain [(1,2) .. (9,9) : (1,3)].
            let dom = rd!([1, 2] .. [9, 9]; [1, 3]);
            let a = NdArray::<i64, 2>::new(ctx, dom);
            assert!(!a.is_unstrided());
            a.fill_with(ctx, |p| p[0] * 1000 + p[1]);
            assert_eq!(a.get(ctx, pt![1, 2]), 1002);
            assert_eq!(a.get(ctx, pt![8, 8]), 8008);
            assert_eq!(a.get(ctx, pt![5, 5]), 5005);
            a.destroy(ctx);
        });
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_panics() {
        spmd(cfg(1), |ctx| {
            let a = NdArray::<f64, 2>::new(ctx, rd!([0, 0]..[2, 2]));
            let _ = a.get(ctx, pt![2, 0]);
        });
    }

    #[test]
    fn restrict_shares_storage() {
        spmd(cfg(1), |ctx| {
            let a = NdArray::<f64, 2>::new(ctx, rd!([0, 0]..[6, 6]));
            a.fill(ctx, 1.0);
            let interior = a.restrict(a.domain().shrink(1));
            assert_eq!(interior.domain(), rd!([1, 1]..[5, 5]));
            interior.fill(ctx, 2.0);
            // Boundary untouched, interior updated — same storage.
            assert_eq!(a.get(ctx, pt![0, 0]), 1.0);
            assert_eq!(a.get(ctx, pt![1, 1]), 2.0);
            assert_eq!(a.get(ctx, pt![4, 4]), 2.0);
            assert_eq!(a.get(ctx, pt![5, 5]), 1.0);
            a.destroy(ctx);
        });
    }

    #[test]
    fn translate_view() {
        spmd(cfg(1), |ctx| {
            let a = NdArray::<i64, 1>::new(ctx, rd!([0]..[4]));
            a.fill_with(ctx, |p| p[0] * 2);
            let t = a.translate(pt![10]);
            assert_eq!(t.domain(), rd!([10]..[14]));
            assert_eq!(t.get(ctx, pt![10]), 0);
            assert_eq!(t.get(ctx, pt![13]), 6);
            a.destroy(ctx);
        });
    }

    #[test]
    fn slice_3d_to_2d() {
        spmd(cfg(1), |ctx| {
            let a = NdArray::<i64, 3>::new(ctx, rd!([0, 0, 0]..[3, 4, 5]));
            a.fill_with(ctx, |p| p[0] * 100 + p[1] * 10 + p[2]);
            // Slice plane i = 1.
            let s = a.slice(0, 1);
            assert_eq!(s.domain(), rd!([0, 0]..[4, 5]));
            assert_eq!(s.get(ctx, pt![2, 3]), 123);
            // Slice along the middle dim: j = 2.
            let m = a.slice(1, 2);
            assert_eq!(m.get(ctx, pt![1, 4]), 124);
            // Writing through a slice hits the parent.
            s.set(ctx, pt![0, 0], -7);
            assert_eq!(a.get(ctx, pt![1, 0, 0]), -7);
            a.destroy(ctx);
        });
    }

    #[test]
    fn permute_swaps_axes() {
        spmd(cfg(1), |ctx| {
            let a = NdArray::<i64, 2>::new(ctx, rd!([0, 0]..[2, 3]));
            a.fill_with(ctx, |p| p[0] * 10 + p[1]);
            let t = a.permute([1, 0]); // transpose
            assert_eq!(t.domain(), rd!([0, 0]..[3, 2]));
            assert_eq!(t.get(ctx, pt![2, 1]), 12);
            assert_eq!(t.get(ctx, pt![0, 1]), 10);
            a.destroy(ctx);
        });
    }

    #[test]
    fn remote_array_access_via_descriptor() {
        spmd(cfg(2), |ctx| {
            // Rank 1 creates a grid; rank 0 reads it through the broadcast
            // descriptor (the directory pattern).
            let desc = if ctx.rank() == 1 {
                let a = NdArray::<f64, 2>::new(ctx, rd!([0, 0]..[3, 3]));
                a.fill_with(ctx, |p| (p[0] + p[1]) as f64);
                ctx.broadcast(1, a)
            } else {
                ctx.broadcast(
                    1,
                    NdArray::<f64, 2>::read_from(&vec![
                        0u8;
                        std::mem::size_of::<NdArray<f64, 2>>()
                    ]),
                )
            };
            assert_eq!(desc.owner(), 1);
            let v = desc.get(ctx, pt![2, 1]);
            assert_eq!(v, 3.0);
            ctx.barrier();
            if ctx.rank() == 1 {
                desc.destroy(ctx);
            }
        });
    }

    #[test]
    fn to_vec_lexicographic() {
        spmd(cfg(1), |ctx| {
            let a = NdArray::<i64, 2>::new(ctx, rd!([0, 0]..[2, 2]));
            a.fill_with(ctx, |p| p[0] * 2 + p[1]);
            assert_eq!(a.to_vec(ctx), vec![0, 1, 2, 3]);
            a.destroy(ctx);
        });
    }
}
