//! One-sided array copy with automatic domain intersection (paper §III-E).
//!
//! `A.copy(B)` in UPC++ "computes the intersection of their domains,
//! obtains the subset of the source array restricted to that intersection,
//! packs elements if necessary, sends the data to the processor that owns
//! the destination, and copies the data to the destination array,
//! unpacking if necessary. The entire operation is one-sided."
//!
//! [`NdArray::copy_from`] reproduces that: the initiating rank gathers the
//! intersection from the source owner's segment (one-sided gets), then
//! scatters into the destination owner's segment (one-sided puts). When
//! the rows of the intersection are uniformly spaced in an array's
//! storage, the transfer on that side collapses to a *single* strided
//! (vector) RMA operation — the iovec capability of RDMA NICs that makes
//! ghost-zone copies one network operation per side.

use crate::array::NdArray;
use crate::domain::RectDomain;
use crate::point::Point;
use rupcxx_net::Pod;
use rupcxx_runtime::Ctx;
use std::cell::RefCell;

/// Description of how an intersection lays out in one array's storage.
/// Offset tables for the non-uniform cases live in the caller's
/// [`Scratch`], not in the enum, so classifying a layout never allocates.
enum RowLayout {
    /// Rows are contiguous and uniformly spaced: (first byte offset,
    /// byte stride between rows). One strided RMA op moves everything.
    Uniform { first: usize, row_stride: usize },
    /// General case: per-row byte offsets (in `Scratch::offs`).
    PerRow,
    /// Rows are not even contiguous along the last dimension
    /// (physically strided view): per-element offsets (in `Scratch::offs`).
    Scattered,
}

/// Reusable buffers for [`NdArray::copy_from`]. SPMD ranks are distinct
/// threads, so a thread-local arena is private to its rank; steady-state
/// ghost exchanges reuse the same capacity every iteration instead of
/// paying an allocation per call.
#[derive(Default)]
struct Scratch {
    pack: Vec<u8>,
    offs: Vec<usize>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

fn layout<T: Pod, const N: usize>(
    arr: &NdArray<T, N>,
    inter: &RectDomain<N>,
    rows: &[(Point<N>, usize)],
    offs: &mut Vec<usize>,
) -> RowLayout {
    let elem = std::mem::size_of::<T>();
    offs.clear();
    // A row is contiguous iff stepping the last dim by the domain stride
    // advances storage by exactly one element.
    let contiguous = arr.phys[N - 1] * inter.stride()[N - 1] / arr.map_stride[N - 1] == 1
        && inter.stride()[N - 1] == arr.map_stride[N - 1];
    if !contiguous {
        offs.reserve(inter.size());
        inter.for_each(|p| offs.push(arr.phys_index(p) as usize * elem));
        return RowLayout::Scattered;
    }
    // A single contiguous row is trivially uniform: bail out before
    // building any offset table at all.
    if let [(head, _)] = rows {
        return RowLayout::Uniform {
            first: arr.phys_index(*head) as usize * elem,
            row_stride: 0,
        };
    }
    offs.extend(
        rows.iter()
            .map(|&(head, _)| arr.phys_index(head) as usize * elem),
    );
    if offs.len() > 1 {
        let d = offs[1].wrapping_sub(offs[0]);
        if offs.windows(2).all(|w| w[1].wrapping_sub(w[0]) == d) && offs[1] > offs[0] {
            return RowLayout::Uniform {
                first: offs[0],
                row_stride: d,
            };
        }
    }
    RowLayout::PerRow
}

impl<T: Pod, const N: usize> NdArray<T, N> {
    /// Copy from `src` into `self` over the intersection of their domains
    /// — the paper's `A.copy(B)` / ghost exchange
    /// `A.constrict(ghost_domain).copy(B)`.
    ///
    /// One-sided: only the *calling* rank's CPU does work; the owners of
    /// `src` and `self` are not involved unless they are the caller.
    pub fn copy_from(&self, ctx: &Ctx, src: &NdArray<T, N>) {
        let inter = self.domain().intersect(&src.domain());
        if inter.is_empty() {
            return;
        }
        let elem = std::mem::size_of::<T>();
        let total_bytes = inter.size() * elem;
        let rows = inter.rows();
        let row_bytes = rows.first().map_or(0, |&(_, len)| len * elem);
        let me = ctx.rank();
        let fabric = ctx.fabric();
        SCRATCH.with(|cell| {
            let s = &mut *cell.borrow_mut();
            s.pack.clear();
            s.pack.resize(total_bytes, 0);
            let pack = &mut s.pack;
            let offs = &mut s.offs;

            // Gather phase (pack at source).
            match layout(src, &inter, &rows, offs) {
                RowLayout::Uniform { first, row_stride } => {
                    fabric.get_strided(
                        me,
                        src.base.add(first),
                        row_stride.max(row_bytes),
                        pack,
                        row_bytes,
                        rows.len(),
                    );
                }
                RowLayout::PerRow => {
                    for (r, off) in offs.iter().enumerate() {
                        fabric.get(
                            me,
                            src.base.add(*off),
                            &mut pack[r * row_bytes..(r + 1) * row_bytes],
                        );
                    }
                }
                RowLayout::Scattered => {
                    for (i, off) in offs.iter().enumerate() {
                        fabric.get(me, src.base.add(*off), &mut pack[i * elem..(i + 1) * elem]);
                    }
                }
            }

            // Scatter phase (unpack at destination).
            match layout(self, &inter, &rows, offs) {
                RowLayout::Uniform { first, row_stride } => {
                    fabric.put_strided(
                        me,
                        self.base.add(first),
                        row_stride.max(row_bytes),
                        pack,
                        row_bytes,
                        rows.len(),
                    );
                }
                RowLayout::PerRow => {
                    for (r, off) in offs.iter().enumerate() {
                        fabric.put(
                            me,
                            self.base.add(*off),
                            &pack[r * row_bytes..(r + 1) * row_bytes],
                        );
                    }
                }
                RowLayout::Scattered => {
                    for (i, off) in offs.iter().enumerate() {
                        fabric.put(me, self.base.add(*off), &pack[i * elem..(i + 1) * elem]);
                    }
                }
            }
        });
    }

    /// Ghost-zone helper: copy the slab of `self` lying `side` of `dim`
    /// *outside* `interior` (the ghost cells) from the neighbour's array
    /// view `src`. Equivalent to
    /// `self.restrict(interior.exterior_face(dim, side, width)).copy_from(ctx, src)`.
    pub fn copy_ghost_from(
        &self,
        ctx: &Ctx,
        src: &NdArray<T, N>,
        interior: RectDomain<N>,
        dim: usize,
        side: i8,
        width: i64,
    ) {
        let ghost = interior.exterior_face(dim, side, width);
        self.restrict(ghost).copy_from(ctx, src);
    }
}

/// Free function mirroring the paper's spelling: `copy(dst, src)` over the
/// domain intersection.
pub fn array_copy<T: Pod, const N: usize>(ctx: &Ctx, dst: &NdArray<T, N>, src: &NdArray<T, N>) {
    dst.copy_from(ctx, src);
}

#[allow(unused)]
fn _assert_point_usable(_: Point<2>) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pt, rd};
    use rupcxx_runtime::{spmd, RuntimeConfig};

    fn cfg(n: usize) -> RuntimeConfig {
        RuntimeConfig::new(n).segment_bytes(1 << 20)
    }

    #[test]
    fn copy_full_overlap_local() {
        spmd(cfg(1), |ctx| {
            let a = NdArray::<f64, 2>::new(ctx, rd!([0, 0]..[4, 4]));
            let b = NdArray::<f64, 2>::new(ctx, rd!([0, 0]..[4, 4]));
            b.fill_with(ctx, |p| (p[0] * 4 + p[1]) as f64);
            a.fill(ctx, -1.0);
            a.copy_from(ctx, &b);
            assert_eq!(a.to_vec(ctx), b.to_vec(ctx));
            a.destroy(ctx);
            b.destroy(ctx);
        });
    }

    #[test]
    fn copy_partial_overlap() {
        spmd(cfg(1), |ctx| {
            let a = NdArray::<i64, 2>::new(ctx, rd!([0, 0]..[4, 4]));
            let b = NdArray::<i64, 2>::new(ctx, rd!([2, 2]..[6, 6]));
            a.fill(ctx, 0);
            b.fill(ctx, 9);
            a.copy_from(ctx, &b);
            // Only the [2,2)..[4,4) corner changed.
            assert_eq!(a.get(ctx, pt![1, 1]), 0);
            assert_eq!(a.get(ctx, pt![2, 2]), 9);
            assert_eq!(a.get(ctx, pt![3, 3]), 9);
            assert_eq!(a.get(ctx, pt![3, 1]), 0);
            a.destroy(ctx);
            b.destroy(ctx);
        });
    }

    #[test]
    fn copy_disjoint_is_noop() {
        spmd(cfg(1), |ctx| {
            let a = NdArray::<i64, 1>::new(ctx, rd!([0]..[4]));
            let b = NdArray::<i64, 1>::new(ctx, rd!([10]..[14]));
            a.fill(ctx, 1);
            b.fill(ctx, 2);
            a.copy_from(ctx, &b);
            assert_eq!(a.to_vec(ctx), vec![1; 4]);
            a.destroy(ctx);
            b.destroy(ctx);
        });
    }

    #[test]
    fn ghost_exchange_between_ranks_3d() {
        // Two ranks side by side along dim 0; exchange one-plane ghosts.
        spmd(cfg(2), |ctx| {
            let me = ctx.rank() as i64;
            // Rank r owns interior [4r..4r+4) × [0..4) × [0..4), with a
            // one-cell ghost shell along dim 0.
            let interior = rd!([4 * me, 0, 0]..[4 * me + 4, 4, 4]);
            let with_ghosts = rd!([4 * me - 1, 0, 0]..[4 * me + 5, 4, 4]);
            let grid = NdArray::<f64, 3>::new(ctx, with_ghosts);
            grid.fill(ctx, -1.0);
            grid.restrict(interior)
                .fill_with(ctx, |p| (p[0] * 100 + p[1] * 10 + p[2]) as f64);
            // Publish descriptors.
            let dirs: Vec<NdArray<f64, 3>> = ctx.allgatherv(&[grid]);
            ctx.barrier();
            // Pull my ghost plane from my neighbour's interior (one-sided).
            if me == 0 {
                grid.copy_ghost_from(ctx, &dirs[1], interior, 0, 1, 1);
                // Ghost plane x=4 now holds neighbour values 4??.
                assert_eq!(grid.get(ctx, pt![4, 0, 0]), 400.0);
                assert_eq!(grid.get(ctx, pt![4, 3, 2]), 432.0);
                // Interior untouched.
                assert_eq!(grid.get(ctx, pt![3, 3, 3]), 333.0);
            } else {
                grid.copy_ghost_from(ctx, &dirs[0], interior, 0, -1, 1);
                assert_eq!(grid.get(ctx, pt![3, 0, 0]), 300.0);
                assert_eq!(grid.get(ctx, pt![3, 2, 1]), 321.0);
            }
            ctx.barrier();
            grid.destroy(ctx);
        });
    }

    #[test]
    fn copy_counts_one_strided_op_per_side_for_planes() {
        spmd(cfg(2), |ctx| {
            let me = ctx.rank() as i64;
            let dom = rd!([0, 0, 4 * me]..[4, 4, 4 * me + 4]);
            let grid = NdArray::<f64, 3>::new(ctx, dom);
            grid.fill(ctx, me as f64);
            let dirs: Vec<NdArray<f64, 3>> = ctx.allgatherv(&[grid]);
            ctx.barrier();
            if me == 0 {
                ctx.fabric().reset_counts();
                // Copy a face of the neighbour's grid (normal to dim 0:
                // rows run along dim 2, heads vary along dim 1 with
                // uniform spacing in the source storage).
                let face = rd!([1, 0, 4]..[2, 4, 8]);
                let dst = grid.translate(pt![0, 0, 4]); // view over neighbour's coords
                dst.restrict(face).copy_from(ctx, &dirs[1]);
                let counts = ctx.fabric().endpoint(0).stats.snapshot();
                // One strided get from the remote source; puts into the
                // local destination count as local ops.
                assert_eq!(counts.gets, 1, "gather collapsed to one vector op");
                assert_eq!(counts.get_bytes, 4 * 4 * 8);
            }
            ctx.barrier();
            grid.destroy(ctx);
        });
    }

    #[test]
    fn single_row_copy_is_one_vector_op_per_side() {
        spmd(cfg(2), |ctx| {
            // A 1-D contiguous intersection is a single row: the
            // single-row bail-out must still collapse the remote gather
            // to one vector op, with no offset table built.
            let me = ctx.rank() as i64;
            let arr = NdArray::<i64, 1>::new(ctx, rd!([16 * me]..[16 * me + 16]));
            arr.fill_with(ctx, |p| p[0] * 3 + 1);
            let dirs: Vec<NdArray<i64, 1>> = ctx.allgatherv(&[arr]);
            ctx.barrier();
            if me == 0 {
                ctx.fabric().reset_counts();
                // View my storage over the neighbour's coordinates so the
                // intersection is the neighbour's whole (single) row.
                let dst = arr.translate(pt![16]);
                dst.copy_from(ctx, &dirs[1]);
                let counts = ctx.fabric().endpoint(0).stats.snapshot();
                assert_eq!(counts.gets, 1, "gather collapsed to one vector op");
                assert_eq!(counts.get_bytes, 16 * 8);
                for i in 0..16i64 {
                    assert_eq!(arr.get(ctx, pt![i]), (i + 16) * 3 + 1);
                }
            }
            ctx.barrier();
            arr.destroy(ctx);
        });
    }

    #[test]
    fn repeated_copies_reuse_scratch() {
        spmd(cfg(1), |ctx| {
            // Steady-state ghost-exchange pattern: the same copy repeated.
            // Correctness must hold across scratch reuse (stale pack
            // contents, shrinking and growing intersections).
            let a = NdArray::<i64, 2>::new(ctx, rd!([0, 0]..[6, 6]));
            let big = NdArray::<i64, 2>::new(ctx, rd!([0, 0]..[6, 6]));
            let small = NdArray::<i64, 2>::new(ctx, rd!([2, 2]..[4, 4]));
            big.fill_with(ctx, |p| p[0] * 10 + p[1]);
            small.fill(ctx, -7);
            for _ in 0..3 {
                a.fill(ctx, 0);
                a.copy_from(ctx, &big); // large pack
                a.copy_from(ctx, &small); // smaller pack reusing the arena
                assert_eq!(a.get(ctx, pt![0, 5]), 5);
                assert_eq!(a.get(ctx, pt![3, 3]), -7);
                assert_eq!(a.get(ctx, pt![5, 1]), 51);
            }
            a.destroy(ctx);
            big.destroy(ctx);
            small.destroy(ctx);
        });
    }

    #[test]
    fn copy_into_strided_view() {
        spmd(cfg(1), |ctx| {
            // Destination is a stride-2 view: scattered layout path.
            let a = NdArray::<i64, 1>::new(ctx, rd!([0] .. [8]; [2]));
            let b = NdArray::<i64, 1>::new(ctx, rd!([0]..[8]));
            a.fill(ctx, 0);
            b.fill_with(ctx, |p| p[0] + 1);
            // Intersection on a's lattice requires equal strides, so
            // restrict b to the same stride first.
            let b_view = NdArray::<i64, 1> {
                domain: rd!([0] .. [8]; [2]),
                ..b
            };
            a.copy_from(ctx, &b_view);
            assert_eq!(a.get(ctx, pt![0]), 1);
            assert_eq!(a.get(ctx, pt![2]), 3);
            assert_eq!(a.get(ctx, pt![6]), 7);
            a.destroy(ctx);
            b.destroy(ctx);
        });
    }
}
