//! `rupcxx-ndarray` — Titanium-style multidimensional domains and arrays
//! (paper §III-E).
//!
//! UPC++ adopts Titanium's domain calculus to fix the two big limitations
//! of UPC shared arrays: single-dimension distribution and compile-time
//! extents. The components, as in the paper:
//!
//! * [`Point<N>`] — a coordinate in N-dimensional space;
//! * [`RectDomain<N>`] — lower bound, **exclusive** upper bound (the
//!   paper's deviation from Titanium, footnote 1) and stride;
//! * [`NdArray<T, N>`] — an array over a rectangular domain, resident on a
//!   single rank but addressable from every rank; supports *views*
//!   (restrict, slice, translate, permute) that reinterpret the same
//!   storage without copying, and a one-sided [`NdArray::copy_from`] that
//!   intersects domains, packs, transfers and unpacks automatically —
//!   the ghost-zone exchange `A.constrict(d).copy(B)` of §III-E becomes
//!   `a.restrict(d).copy_from(ctx, &b)`.
//!
//! Construction macros mirror the paper's `POINT`, `RECTDOMAIN` and
//! `ARRAY` shorthands ([`pt!`], [`rd!`]).

// Dimension-indexed loops touch several per-dimension arrays at once;
// the indexed form is the clearer one throughout this crate.
#![allow(clippy::needless_range_loop)]

pub mod array;
pub mod copy;
pub mod dist;
pub mod domain;
pub mod local;
pub mod point;

pub use array::NdArray;
pub use dist::DistArray;
pub use domain::RectDomain;
pub use local::LocalGrid;
pub use point::Point;

/// Construct a [`Point`]: `pt![1, 2, 3]`.
#[macro_export]
macro_rules! pt {
    ($($c:expr),+ $(,)?) => {
        $crate::Point::new([$($c as i64),+])
    };
}

/// Construct a [`RectDomain`] (paper's `RECTDOMAIN((l…), (u…), (s…))`):
/// `rd!([0,0] .. [8,8])` (unit stride) or
/// `rd!([1,2] .. [9,9]; [1,3])` (strided).
#[macro_export]
macro_rules! rd {
    ([$($l:expr),+] .. [$($u:expr),+]) => {
        $crate::RectDomain::new(
            $crate::Point::new([$($l as i64),+]),
            $crate::Point::new([$($u as i64),+]),
        )
    };
    ([$($l:expr),+] .. [$($u:expr),+]; [$($s:expr),+]) => {
        $crate::RectDomain::strided(
            $crate::Point::new([$($l as i64),+]),
            $crate::Point::new([$($u as i64),+]),
            $crate::Point::new([$($s as i64),+]),
        )
    };
}
