//! Distributed Monte-Carlo path tracing (the paper's Embree case study,
//! §V-D): cyclic tile distribution over ranks, dynamic scheduling over
//! local threads, final sum-reduction — then write the image as a PPM.
//!
//! Run with: `cargo run --release --example render`
//! (writes `results/render.ppm`)

use rupcxx::prelude::*;
use rupcxx_apps::ray::{run, RayConfig};

fn main() {
    let cfg = RayConfig {
        width: 320,
        height: 240,
        spp: 16,
        tile: 16,
        threads_per_rank: 2,
        nspheres: 10,
        seed: 2014, // the paper's year
    };
    let cfg2 = cfg.clone();
    let out = spmd(RuntimeConfig::new(2).segment_mib(32), move |ctx| {
        run(ctx, &cfg2)
    });
    let result = &out[0];
    let image = result.image.as_ref().expect("rank 0 holds the image");

    // Tone-map and write a PPM.
    std::fs::create_dir_all("results").expect("results dir");
    let mut ppm = format!("P3\n{} {}\n255\n", cfg.width, cfg.height);
    for px in image.chunks_exact(3) {
        for &c in px {
            // Gamma 2.2, clamped.
            let v = (c.max(0.0).powf(1.0 / 2.2) * 255.0).min(255.0) as u8;
            ppm.push_str(&format!("{v} "));
        }
        ppm.push('\n');
    }
    std::fs::write("results/render.ppm", ppm).expect("write ppm");
    println!(
        "rendered {}x{} at {} spp in {:.2}s on 2 ranks (checksum {:.1})",
        cfg.width, cfg.height, cfg.spp, result.seconds, result.checksum
    );
    println!("image written to results/render.ppm");
    assert!(result.checksum > 0.0);
}
