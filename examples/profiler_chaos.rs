//! Worked example for EXPERIMENTS.md: the causal profiler on a GUPS run
//! under the standard chaos fault plan. Retransmission delays real
//! barrier traffic, so the wait-state attribution shifts from
//! `late_send` to `retx_stall` and the critical-path report names the
//! stalled ranks. Run with:
//!
//! ```
//! cargo run --release --example profiler_chaos
//! ```

use rupcxx_apps::gups::{run, GupsConfig, Variant};
use rupcxx_net::{FaultPlan, ProfConfig};
use rupcxx_runtime::{spmd, RuntimeConfig};

fn main() {
    let plan = FaultPlan::new(101)
        .drop(0.10)
        .dup(0.05)
        .reorder(0.10)
        .delay(0.05);
    let out = spmd(
        RuntimeConfig::new(4)
            .segment_mib(4)
            .with_faults(plan)
            .with_prof(ProfConfig::on().with_path("results/profiler_chaos.json")),
        |ctx| {
            run(
                ctx,
                &GupsConfig {
                    table_size: 1 << 10,
                    updates_per_rank: 2_000,
                    variant: Variant::Upcxx,
                    verify: true,
                },
            )
        },
    );
    assert!(
        out.iter().all(|r| r.verified),
        "GUPS must verify under chaos"
    );
    println!(
        "gups: {:.4} (verified under 10% drop / 5% dup / 10% reorder)",
        out[0].gups
    );
}
