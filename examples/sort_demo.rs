//! Distributed sample sort demo (paper §V-C): Mersenne-Twister keys in a
//! shared array, PGAS sampling for splitters, one-sided redistribution,
//! local sort — with the resulting key distribution printed per rank.
//!
//! Run with: `cargo run --release --example sort_demo`

use rupcxx::prelude::*;
use rupcxx_apps::sample_sort::{run, SortConfig, Variant};

fn main() {
    let ranks = 4;
    let keys_per_rank = 250_000;
    let out = spmd(RuntimeConfig::new(ranks).segment_mib(64), move |ctx| {
        let r = run(
            ctx,
            &SortConfig {
                keys_per_rank,
                oversample: 64,
                variant: Variant::Upcxx,
                seed: 20140519, // IPDPS'14
            },
        );
        (r.verified, r.my_keys, r.seconds, r.tb_per_min)
    });
    println!("sorted {} keys on {ranks} ranks:", keys_per_rank * ranks);
    for (rank, &(verified, my_keys, seconds, tbmin)) in out.iter().enumerate() {
        println!(
            "  rank {rank}: {my_keys:7} keys ({:+5.1}% of even share), verified={verified}",
            (my_keys as f64 / keys_per_rank as f64 - 1.0) * 100.0
        );
        if rank == 0 {
            println!("  wall {seconds:.3}s  → {tbmin:.4} TB/min");
        }
    }
    assert!(out.iter().all(|&(v, ..)| v), "global sort must verify");
    let total: usize = out.iter().map(|&(_, k, ..)| k).sum();
    assert_eq!(total, keys_per_rank * ranks);
    println!("globally sorted and verified");
}
