//! A distributed hash table built from the paper's low-level PGAS
//! mechanisms (§III-C): **remote memory allocation** — "when inserting an
//! element into a distributed data structure, it may be necessary to
//! allocate memory at the thread that owns the insertion point" — global
//! pointers, one-sided reads, and global locks for bucket updates.
//!
//! Run with: `cargo run --example distributed_hash_table`
//!
//! Layout: buckets are distributed cyclically over ranks as a
//! `SharedArray<GlobalPtr<Node>>` of head pointers; each chain node is
//! allocated **on the bucket's owner rank** (possibly remotely by the
//! inserting rank), so chains stay local to their bucket owner.

use rupcxx::prelude::*;

/// One chain node in the global address space (key, value, next).
/// `GlobalPtr` is Pod, so nodes can be read/written one-sided.
#[derive(Clone, Copy, Debug)]
struct Node {
    key: u64,
    value: u64,
    next: GlobalPtr<Node>,
}

// SAFETY: three 8-byte fields (GlobalPtr = one packed u64)… all-valid
// bit patterns, no padding on 64-bit targets.
unsafe impl Pod for Node {}

/// Sentinel "null" global pointer: the all-ones packed word — the
/// maximal representable address (rank 65535, offset 256 TiB − 1),
/// which no allocation ever hands out.
fn null_ptr() -> GlobalPtr<Node> {
    GlobalPtr::from_addr(GlobalAddr::from_packed(u64::MAX))
}
fn is_null(p: GlobalPtr<Node>) -> bool {
    p.addr().packed() == u64::MAX
}

struct Dht {
    heads: SharedArray<u64>, // one packed GlobalPtr word per bucket
    locks: Vec<GlobalLock>,
    nbuckets: usize,
}

impl Dht {
    /// Collectively create a table with `nbuckets` buckets.
    fn new(ctx: &Ctx, nbuckets: usize) -> Self {
        // One u64 slot per bucket holds the packed head pointer — the
        // packed word is its own storage format, so "null" is u64::MAX.
        let heads = SharedArray::<u64>::new(ctx, nbuckets, 1);
        for i in heads.my_indices(ctx).collect::<Vec<_>>() {
            heads.write(ctx, i, null_ptr().addr().packed());
        }
        // One lock per bucket, homed on the bucket's owner, created by
        // rank 0 and broadcast (as its packed address word).
        let locks: Vec<GlobalLock> = (0..nbuckets)
            .map(|b| {
                let owner = heads.owner(b);
                let lock = if ctx.rank() == 0 {
                    let l = GlobalLock::new(ctx, owner);
                    ctx.broadcast(0, [l.addr().packed()])
                } else {
                    ctx.broadcast(0, [0u64])
                };
                GlobalLock::from_addr(GlobalAddr::from_packed(lock[0]))
            })
            .collect();
        ctx.barrier();
        Dht {
            heads,
            locks,
            nbuckets,
        }
    }

    fn bucket(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.nbuckets
    }

    fn read_head(&self, ctx: &Ctx, b: usize) -> GlobalPtr<Node> {
        GlobalPtr::from_addr(GlobalAddr::from_packed(self.heads.read(ctx, b)))
    }

    fn write_head(&self, ctx: &Ctx, b: usize, p: GlobalPtr<Node>) {
        self.heads.write(ctx, b, p.addr().packed());
    }

    /// Insert (prepend) under the bucket lock. The node is allocated on
    /// the bucket owner's rank — remote allocation when the inserter is
    /// someone else (the paper's motivating feature).
    fn insert(&self, ctx: &Ctx, key: u64, value: u64) {
        let b = self.bucket(key);
        let owner = self.heads.owner(b);
        self.locks[b].with(ctx, || {
            let head = self.read_head(ctx, b);
            let node = allocate::<Node>(ctx, owner, 1).expect("segment memory");
            node.rput(
                ctx,
                Node {
                    key,
                    value,
                    next: head,
                },
            );
            self.write_head(ctx, b, node);
        });
    }

    /// One-sided lookup: walk the chain with remote reads; no lock needed
    /// for a quiescent table.
    fn get(&self, ctx: &Ctx, key: u64) -> Option<u64> {
        let mut cur = self.read_head(ctx, self.bucket(key));
        while !is_null(cur) {
            let node = cur.rget(ctx);
            if node.key == key {
                return Some(node.value);
            }
            cur = node.next;
        }
        None
    }
}

fn main() {
    let ranks = 4;
    let inserts_per_rank = 200u64;
    spmd(RuntimeConfig::new(ranks).segment_mib(8), move |ctx| {
        let dht = Dht::new(ctx, 64);
        let me = ctx.rank() as u64;

        // Every rank inserts its own keys — most allocations are remote.
        for i in 0..inserts_per_rank {
            let key = me * 10_000 + i;
            dht.insert(ctx, key, key * 3);
        }
        ctx.barrier();

        // Every rank looks up every key, one-sided.
        let mut found = 0u64;
        for r in 0..ctx.ranks() as u64 {
            for i in 0..inserts_per_rank {
                let key = r * 10_000 + i;
                assert_eq!(dht.get(ctx, key), Some(key * 3));
                found += 1;
            }
        }
        assert_eq!(dht.get(ctx, 999_999_999), None);
        ctx.barrier();
        if ctx.rank() == 0 {
            let per_rank: Vec<usize> = (0..ctx.ranks()).map(|r| ctx.segment_in_use(r)).collect();
            println!(
                "DHT: {} lookups verified on every rank; chain bytes per rank: {:?}",
                found, per_rank
            );
        }
        let _ = null_ptr(); // demo helper
    });
    println!("distributed hash table example passed");
}
