//! The event-driven task dependency graph of the paper's Listing 1 /
//! Fig. 1, verbatim:
//!
//! ```c
//! event e1, e2, e3;
//! async(p1, &e1)(t1);
//! async(p2, &e1)(t2);
//! async_after(p3, &e1, &e2)(t3);
//! async(p4, &e2)(t4);
//! async_after(p5, &e2, &e3)(t5);
//! async_after(p6, &e2, &e3)(t6);
//! e3.wait();
//! ```
//!
//! Run with: `cargo run --example task_graph`

use rupcxx::prelude::*;
use rupcxx_util::sync::Mutex;
use std::sync::Arc;

fn main() {
    let log: Arc<Mutex<Vec<String>>> = Arc::default();
    let log2 = log.clone();
    spmd(RuntimeConfig::new(4).segment_mib(1), move |ctx| {
        if ctx.rank() != 0 {
            ctx.barrier();
            return;
        }
        let (e1, e2, e3) = (Event::new(), Event::new(), Event::new());
        let task = |name: &'static str, log: &Arc<Mutex<Vec<String>>>| {
            let log = log.clone();
            move |tctx: &Ctx| {
                log.lock()
                    .push(format!("{name} ran on rank {}", tctx.rank()));
            }
        };
        // Places p1..p6 spread over the other ranks.
        async_with_event(ctx, 1, &e1, task("t1", &log2));
        async_with_event(ctx, 2, &e1, task("t2", &log2));
        async_after(ctx, 3, &e1, Some(&e2), task("t3", &log2));
        async_with_event(ctx, 1, &e2, task("t4", &log2));
        async_after(ctx, 2, &e2, Some(&e3), task("t5", &log2));
        async_after(ctx, 3, &e2, Some(&e3), task("t6", &log2));
        e3.wait(ctx);
        ctx.barrier();
    });

    let entries = log.lock().clone();
    println!("execution order:");
    for e in &entries {
        println!("  {e}");
    }
    let pos = |n: &str| entries.iter().position(|e| e.starts_with(n)).unwrap();
    assert_eq!(entries.len(), 6);
    assert!(
        pos("t3") > pos("t1") && pos("t3") > pos("t2"),
        "t3 after e1"
    );
    assert!(
        pos("t5") > pos("t3") && pos("t5") > pos("t4"),
        "t5 after e2"
    );
    assert!(
        pos("t6") > pos("t3") && pos("t6") > pos("t4"),
        "t6 after e2"
    );
    println!("task graph respected all Fig. 1 dependency edges");
}
