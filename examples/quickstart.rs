//! Quickstart: the core PGAS constructs in one small program.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Mirrors the paper's Table I feature tour: SPMD ranks, a shared scalar,
//! a block-cyclic shared array, one-sided reads/writes, barrier, and an
//! asynchronous remote function invocation with a future.

use rupcxx::prelude::*;

fn main() {
    let ranks = 4;
    let totals = spmd(RuntimeConfig::new(ranks).segment_mib(4), |ctx| {
        // THREADS / MYTHREAD.
        println!("hello from rank {} of {}", ctx.rank(), ctx.ranks());

        // A shared scalar on rank 0 (UPC: `shared int s`).
        let s = SharedVar::<u64>::new(ctx, 0);
        if ctx.rank() == 0 {
            s.write(ctx, 42);
        }
        ctx.barrier();
        assert_eq!(s.read(ctx), 42);

        // A cyclic shared array (UPC: `shared uint64_t a[32]`).
        let a = SharedArray::<u64>::new(ctx, 32, 1);
        for i in a.my_indices(ctx).collect::<Vec<_>>() {
            a.write(ctx, i, (i * i) as u64); // write my elements
        }
        ctx.barrier();
        // Every rank reads the whole array one-sided.
        let total: u64 = (0..32).map(|i| a.read(ctx, i)).sum();

        // Async remote function invocation with a future (paper §III-G):
        // `future<T> f = async(place)(function, args...)`.
        let place = (ctx.rank() + 1) % ctx.ranks();
        let f = async_on(ctx, place, move |tctx| {
            format!("task from somewhere ran on rank {}", tctx.rank())
        });
        let message = f.get(ctx);
        if ctx.rank() == 0 {
            println!("{message}");
        }

        // finish: wait for all asyncs spawned in the scope (paper §III-G).
        ctx.finish(|fs| {
            for r in 0..ctx.ranks() {
                fs.spawn(r, move |tctx| {
                    assert_eq!(tctx.rank(), r);
                });
            }
        });

        ctx.barrier();
        s.destroy(ctx);
        a.destroy(ctx);
        total
    });
    // Σ i² for i in 0..32.
    assert!(totals.iter().all(|&t| t == (0..32u64).map(|i| i * i).sum()));
    println!("all {ranks} ranks agreed: Σ i² = {}", totals[0]);
}
