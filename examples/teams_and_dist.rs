//! Teams and distributed multidimensional arrays — the library's
//! extensions beyond the paper's prototype (both named by the paper as
//! directions: group places for `async`, §III-G, and "true distributed
//! multidimensional arrays", §III-E).
//!
//! Run with: `cargo run --example teams_and_dist`
//!
//! Six ranks form a 3×2 process grid over a global 2-D field. Row teams
//! compute per-row statistics with team collectives; a `DistArray` holds
//! the field itself with one-sided global access and halo exchange.

use rupcxx::prelude::*;
use rupcxx_ndarray::{rd, DistArray};

fn main() {
    let rows = 2usize;
    let cols = 3usize;
    let out = spmd(RuntimeConfig::new(rows * cols).segment_mib(4), move |ctx| {
        // A 12×12 global field, block-partitioned 3×2, one ghost layer.
        let field = DistArray::<f64, 2>::new(ctx, rd!([0, 0]..[12, 12]), [cols, rows], 1);
        field.local().fill(ctx, 0.0);
        field.fill_interior_with(ctx, |p| (p[0] + p[1]) as f64);
        ctx.barrier();
        field.exchange_ghosts(ctx);
        ctx.barrier();

        // Row teams: ranks with the same grid row.
        let world = ctx.team_world();
        let my_row = (ctx.rank() / cols) as u64;
        let row_team = world.split(ctx, my_row, ctx.rank() as u64);
        assert_eq!(row_team.size(), cols);

        // Each rank sums its interior; the row team reduces.
        let mut local_sum = 0.0;
        field
            .interior()
            .for_each(|p| local_sum += field.local().get(ctx, p));
        let row_sum = row_team.allreduce(ctx, local_sum, |a, b| a + b);

        // Row leaders report to rank 0 through a world gather.
        let report = if row_team.my_index() == 0 {
            row_sum
        } else {
            -1.0
        };
        let all = ctx.gather(0, report);
        ctx.barrier();
        let global_via_rows = world.allreduce(ctx, local_sum, |a, b| a + b);
        field.destroy(ctx);
        (row_sum, all, global_via_rows)
    });

    let (.., global) = out[0];
    println!("global field sum: {global}");
    for (rank, (row_sum, reports, _)) in out.iter().enumerate() {
        if rank == 0 {
            let leaders: Vec<f64> = reports
                .as_ref()
                .unwrap()
                .iter()
                .copied()
                .filter(|&v| v >= 0.0)
                .collect();
            println!("row sums via team leaders: {leaders:?}");
            assert_eq!(leaders.iter().sum::<f64>(), global);
        }
        assert!(*row_sum >= 0.0);
    }
    // Σ (i+j) over 12×12 = 12*Σi + 12*Σj = 2*12*66 = 1584.
    assert_eq!(global, 1584.0);
    println!("teams + distributed array example passed");
}
