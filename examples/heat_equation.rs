//! Heat diffusion on a distributed 3-D grid using the multidimensional
//! array library (paper §III-E / §V-B): each rank holds a block of the
//! grid with ghost shells; ghost planes move with the one-sided,
//! domain-intersecting array copy
//! (`A.constrict(ghost_domain).copy(B)` → `copy_ghost_from`).
//!
//! Run with: `cargo run --example heat_equation`

use rupcxx::prelude::*;
use rupcxx_ndarray::{pt, NdArray, Point, RectDomain};

fn main() {
    // 2×1×1 process grid, 16³ points per rank, hot plate at one face.
    let (px, py, pz) = (2usize, 1usize, 1usize);
    let edge = 16i64;
    let steps = 50;
    let alpha = 0.1;

    let results = spmd(
        RuntimeConfig::new(px * py * pz).segment_mib(16),
        move |ctx| {
            let me = ctx.rank() as i64;
            let (cx, cy, cz) = (
                me % px as i64,
                (me / px as i64) % py as i64,
                me / (px as i64 * py as i64),
            );
            let lo = pt![cx * edge, cy * edge, cz * edge];
            let interior = RectDomain::new(lo, lo + Point::splat(edge));
            let halo = RectDomain::new(lo - Point::ones(), lo + Point::splat(edge + 1));

            let a = NdArray::<f64, 3>::new(ctx, halo);
            let b = NdArray::<f64, 3>::new(ctx, halo);
            a.fill(ctx, 0.0);
            b.fill(ctx, 0.0);
            // Hot plate: global x = 0 plane fixed at 100 degrees.
            if cx == 0 {
                a.restrict(interior.interior_face(0, -1, 1))
                    .fill(ctx, 100.0);
                b.restrict(interior.interior_face(0, -1, 1))
                    .fill(ctx, 100.0);
            }
            let dirs: Vec<NdArray<f64, 3>> = ctx.allgatherv(&[a]);
            let dirs_b: Vec<NdArray<f64, 3>> = ctx.allgatherv(&[b]);

            let neighbor = |dx: i64, dy: i64, dz: i64| -> Option<usize> {
                let (nx, ny, nz) = (cx + dx, cy + dy, cz + dz);
                ((0..px as i64).contains(&nx)
                    && (0..py as i64).contains(&ny)
                    && (0..pz as i64).contains(&nz))
                .then(|| (nx + ny * px as i64 + nz * (px * py) as i64) as usize)
            };

            let mut cur = a;
            let mut nxt = b;
            let mut dir_cur = dirs;
            let mut dir_nxt = dirs_b;
            for _ in 0..steps {
                // Pull 6 ghost faces one-sided from the neighbours.
                for (dim, (dx, dy, dz)) in
                    [(0, (1, 0, 0)), (1, (0, 1, 0)), (2, (0, 0, 1))].into_iter()
                {
                    for side in [-1i8, 1] {
                        let s = side as i64;
                        if let Some(nb) = neighbor(dx * s, dy * s, dz * s) {
                            cur.copy_ghost_from(ctx, &dir_cur[nb], interior, dim, side, 1);
                        }
                    }
                }
                ctx.barrier();
                // Explicit Euler diffusion step on the interior (skipping
                // the fixed hot plate).
                interior.for_each(|p| {
                    if cx == 0 && p[0] == 0 {
                        return; // Dirichlet hot plate
                    }
                    let c = cur.get(ctx, p);
                    let lap = cur.get(ctx, p + Point::unit(0))
                        + cur.get(ctx, p - Point::unit(0))
                        + cur.get(ctx, p + Point::unit(1))
                        + cur.get(ctx, p - Point::unit(1))
                        + cur.get(ctx, p + Point::unit(2))
                        + cur.get(ctx, p - Point::unit(2))
                        - 6.0 * c;
                    nxt.set(ctx, p, c + alpha * lap);
                });
                std::mem::swap(&mut cur, &mut nxt);
                std::mem::swap(&mut dir_cur, &mut dir_nxt);
                ctx.barrier();
            }

            // Mean temperature along global x, this rank's share.
            let mut profile = vec![0.0f64; edge as usize];
            interior.for_each(|p| {
                profile[(p[0] - lo[0]) as usize] += cur.get(ctx, p);
            });
            ctx.barrier();
            cur.destroy(ctx);
            nxt.destroy(ctx);
            (cx, profile)
        },
    );

    // Stitch the global x-profile and sanity-check monotone decay.
    let mut global = vec![0.0; (px as i64 * edge) as usize];
    for (cx, profile) in &results {
        for (i, v) in profile.iter().enumerate() {
            global[(cx * edge) as usize + i] += v / (edge * edge) as f64;
        }
    }
    println!("mean temperature along x after 50 steps:");
    for (i, v) in global.iter().enumerate().step_by(4) {
        println!("  x={i:2}  T={v:7.3}");
    }
    assert!((global[0] - 100.0).abs() < 1e-9, "hot plate stays fixed");
    assert!(
        global.windows(2).all(|w| w[1] <= w[0] + 1e-9),
        "heat decays monotonically away from the plate"
    );
    assert!(global[4] > 0.01, "heat has diffused into the domain");
    println!("heat equation example passed");
}
