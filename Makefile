# Local CI gate — the same checks the workflow runs.
# `make ci` must be green before merging.

CARGO ?= cargo

# Pinned seeds for the chaos suite: three distinct fault schedules,
# each fully reproducible (see README "Robustness").
CHAOS_SEEDS ?= 101 202 303

.PHONY: ci fmt clippy test chaos check-race bench-smoke access-smoke prof-smoke explore-smoke conduit-smoke

ci: fmt clippy test chaos check-race bench-smoke access-smoke prof-smoke explore-smoke conduit-smoke

fmt:
	$(CARGO) fmt --all --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

test:
	$(CARGO) test --workspace -q

chaos:
	@for seed in $(CHAOS_SEEDS); do \
		echo "== chaos seed $$seed =="; \
		RUPCXX_CHAOS_SEED=$$seed $(CARGO) test -q --test chaos_integration || exit 1; \
	done

# The rupcxx-check gate: the seeded racy corpus must flag every planted
# bug and the clean benchmarks must produce zero findings (README
# "Correctness checking") — also with the read cache enabled, where
# hits and line fills must not manufacture false findings.
check-race:
	$(CARGO) test -q --test check_corpus
	$(CARGO) test -q --test check_clean
	RUPCXX_CACHE=on $(CARGO) test -q --test check_clean

# Short calibrated bench runs: aggregation asserts the batched path uses
# no more wire frames than per-op (BENCH_aggregation.json); caching
# asserts a >=5x remote-get reduction with bit-for-bit identical data
# and an untouched cache-off path (BENCH_caching.json).
bench-smoke:
	RUPCXX_BENCH_SMOKE=1 $(CARGO) bench -q -p rupcxx-bench --bench aggregation
	RUPCXX_BENCH_SMOKE=1 $(CARGO) bench -q -p rupcxx-bench --bench caching

# The access-path gate: direct word ops, the aggregated pack path, and
# multi-producer injection through the packed-pointer / arena-slab /
# sharded-buffer fast paths. Fails if the aggregated pack path regresses
# above the direct per-op path or steady-state packing starts allocating
# (BENCH_access.json; README "Performance").
access-smoke:
	RUPCXX_BENCH_SMOKE=1 $(CARGO) bench -q -p rupcxx-bench --bench access

# The profiler gate: profiled GUPS + stencil runs must yield a non-empty
# critical path with >=90% of barrier wall time attributed to named wait
# states, a planted dead link must produce a flight-recorder dump with
# the final retransmit attempts, and the profiler-off path must move
# bit-for-bit identical wire traffic (BENCH_profiler.json; README
# "Observability").
prof-smoke:
	$(CARGO) test -q --test prof_integration
	RUPCXX_BENCH_SMOKE=1 $(CARGO) bench -q -p rupcxx-bench --bench profiler

# The model-checking gate: bounded exhaustive exploration on two corpus
# bugs plus a clean benchmark (`smoke_` subset of explore_corpus), and
# bit-for-bit replay of every committed minimized schedule under
# tests/schedules/ (README "Model checking").
explore-smoke:
	$(CARGO) test -q --test explore_corpus smoke_
	$(CARGO) test -q --test explore_replay

# The transport-conduit gate: a 2-process GUPS run over the shm and uds
# conduits (real OS processes talking through mmap'd rings / Unix
# sockets) must match the in-process loopback checksum bit-for-bit
# (`smoke_` subset of conduit_conformance; README "Conduits"). Release
# mode keeps the whole thing under ~5 s.
conduit-smoke:
	$(CARGO) test -q --release --test conduit_conformance smoke_
