# Local CI gate — the same three checks the workflow runs.
# `make ci` must be green before merging.

CARGO ?= cargo

.PHONY: ci fmt clippy test

ci: fmt clippy test

fmt:
	$(CARGO) fmt --all --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

test:
	$(CARGO) test --workspace -q
