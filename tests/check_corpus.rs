//! The seeded racy corpus: programs with deliberately planted PGAS bugs
//! that `rupcxx-check` must flag deterministically — every pattern is
//! constructed so the finding does not depend on thread scheduling (both
//! conflicting accesses always reach the shadow, or the stuck state is
//! reached on every run). The clean twins live in `check_clean.rs`.

use rupcxx::prelude::*;
use rupcxx_check::{new_sink, CheckConfig, FindingKind, FindingSink};
use rupcxx_net::AggConfig;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn cfg(n: usize, check: CheckConfig) -> RuntimeConfig {
    RuntimeConfig::new(n)
        .segment_bytes(1 << 16)
        .with_check(check)
}

fn kinds(sink: &FindingSink) -> Vec<FindingKind> {
    sink.lock().iter().map(|f| f.kind).collect()
}

fn messages(sink: &FindingSink) -> String {
    sink.lock()
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Run a job expected to be aborted by the deadlock pass; returns the
/// panic text.
fn expect_abort(n: usize, sink: FindingSink, body: impl Fn(&Ctx) + Send + Sync) -> String {
    let err = catch_unwind(AssertUnwindSafe(|| {
        spmd(cfg(n, CheckConfig::all().with_sink(sink)), body);
    }))
    .expect_err("the checker should have aborted this job");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

// ---- data races ---------------------------------------------------------

/// Pattern 1: a remote put racing an unsynchronized local read of the
/// same word (the canonical PGAS bug: consuming data before the barrier).
#[test]
fn race_put_vs_unsynchronized_read() {
    let sink = new_sink();
    spmd(cfg(2, CheckConfig::race().with_sink(sink.clone())), |ctx| {
        if ctx.rank() == 0 {
            ctx.fabric().put_u64(0, GlobalAddr::new(1, 256), 42);
        } else {
            let _ = ctx.fabric().get_u64(1, GlobalAddr::new(1, 256));
        }
    });
    assert!(
        kinds(&sink).contains(&FindingKind::DataRace),
        "expected a data race, got:\n{}",
        messages(&sink)
    );
    let msgs = messages(&sink);
    assert!(msgs.contains("put") && msgs.contains("get"), "{msgs}");
}

/// Pattern 2: two ranks writing the same remote word with no ordering.
#[test]
fn race_write_write_same_word() {
    let sink = new_sink();
    spmd(cfg(2, CheckConfig::race().with_sink(sink.clone())), |ctx| {
        ctx.fabric()
            .put_u64(ctx.rank(), GlobalAddr::new(0, 128), ctx.rank() as u64);
    });
    assert!(
        kinds(&sink).contains(&FindingKind::DataRace),
        "expected a write-write race, got:\n{}",
        messages(&sink)
    );
}

/// Pattern 3: an aggregated (batched) put applied at the target races a
/// read the target performed before the flush was ordered — the frame is
/// recorded with the *sender's flush-time clock*, so batching cannot hide
/// the race.
#[test]
fn race_aggregated_put_vs_unfenced_read() {
    let sink = new_sink();
    spmd(
        cfg(2, CheckConfig::race().with_sink(sink.clone()))
            .with_agg(AggConfig::new().flush_count(64)),
        |ctx| {
            if ctx.rank() == 0 {
                // Stays buffered until the barrier's flush.
                ctx.fabric()
                    .put_buffered(0, GlobalAddr::new(1, 512), &7u64.to_le_bytes());
            } else {
                let _ = ctx.fabric().get_u64(1, GlobalAddr::new(1, 512));
            }
            // The barrier flushes and delivers the batch; the pre-barrier
            // read has no happens-before edge to it.
            ctx.barrier();
        },
    );
    let msgs = messages(&sink);
    assert!(
        kinds(&sink).contains(&FindingKind::DataRace),
        "expected an agg-apply race, got:\n{msgs}"
    );
    assert!(msgs.contains("agg-put"), "{msgs}");
}

// ---- lock misuse --------------------------------------------------------

/// Pattern 4: holding a `GlobalLock` across `barrier()` — legal-looking
/// code that deadlocks as soon as a peer acquires inside the episode.
#[test]
fn lock_held_across_barrier_is_flagged() {
    let sink = new_sink();
    spmd(cfg(2, CheckConfig::all().with_sink(sink.clone())), |ctx| {
        let lock = if ctx.rank() == 0 {
            let l = GlobalLock::new(ctx, 0);
            ctx.broadcast(0, [l.addr().rank() as u64, l.addr().offset() as u64]);
            l
        } else {
            let a = ctx.broadcast(0, [0u64, 0u64]);
            GlobalLock::from_addr(GlobalAddr::new(a[0] as usize, a[1] as usize))
        };
        if ctx.rank() == 0 {
            lock.acquire(ctx);
        }
        ctx.barrier();
        if ctx.rank() == 0 {
            lock.release(ctx);
        }
        ctx.barrier();
        if ctx.rank() == 0 {
            lock.destroy(ctx);
        }
    });
    assert!(
        kinds(&sink).contains(&FindingKind::LockAcrossBarrier),
        "expected lock-across-barrier, got:\n{}",
        messages(&sink)
    );
}

/// Pattern 5: the classic ABBA two-lock cycle across two ranks.
#[test]
fn deadlock_two_lock_cycle_aborts() {
    let sink = new_sink();
    let msg = expect_abort(2, sink.clone(), |ctx| {
        let (la, lb) = if ctx.rank() == 0 {
            let a = GlobalLock::new(ctx, 0);
            let b = GlobalLock::new(ctx, 1);
            ctx.broadcast(
                0,
                [
                    a.addr().rank() as u64,
                    a.addr().offset() as u64,
                    b.addr().rank() as u64,
                    b.addr().offset() as u64,
                ],
            );
            (a, b)
        } else {
            let v = ctx.broadcast(0, [0u64; 4]);
            (
                GlobalLock::from_addr(GlobalAddr::new(v[0] as usize, v[1] as usize)),
                GlobalLock::from_addr(GlobalAddr::new(v[2] as usize, v[3] as usize)),
            )
        };
        // Rank 0 holds A and wants B; rank 1 holds B and wants A.
        if ctx.rank() == 0 {
            la.acquire(ctx);
        } else {
            lb.acquire(ctx);
        }
        ctx.barrier();
        if ctx.rank() == 0 {
            lb.acquire(ctx);
        } else {
            la.acquire(ctx);
        }
    });
    assert!(msg.contains("rupcxx-check"), "panic was: {msg}");
    assert!(
        kinds(&sink).contains(&FindingKind::LockCycle),
        "expected a lock cycle, got:\n{}",
        messages(&sink)
    );
    assert!(
        messages(&sink).contains("lock cycle"),
        "{}",
        messages(&sink)
    );
}

/// Pattern 6: a rank re-acquiring the (non-reentrant) lock it holds.
#[test]
fn deadlock_self_reacquire_aborts() {
    let sink = new_sink();
    let msg = expect_abort(1, sink.clone(), |ctx| {
        let lock = GlobalLock::new(ctx, 0);
        lock.acquire(ctx);
        lock.acquire(ctx); // never returns
    });
    assert!(msg.contains("rupcxx-check"), "panic was: {msg}");
    assert!(
        messages(&sink).contains("self-deadlock"),
        "expected a self-deadlock, got:\n{}",
        messages(&sink)
    );
}

// ---- lost signals and mismatched collectives ----------------------------

/// Pattern 7: waiting on an event nobody will ever signal.
#[test]
fn deadlock_event_never_signaled_aborts() {
    let sink = new_sink();
    let msg = expect_abort(1, sink.clone(), |ctx| {
        let ev = Event::new();
        ev.register();
        ev.wait(ctx); // no signal is ever sent
    });
    assert!(msg.contains("rupcxx-check"), "panic was: {msg}");
    assert!(
        kinds(&sink).contains(&FindingKind::EventNeverSignaled),
        "expected event-never-signaled, got:\n{}",
        messages(&sink)
    );
}

/// Pattern 8: mismatched barrier arrival — one rank calls `barrier()`,
/// its peer returns without ever arriving.
#[test]
fn deadlock_mismatched_barrier_aborts() {
    let sink = new_sink();
    let msg = expect_abort(2, sink.clone(), |ctx| {
        if ctx.rank() == 0 {
            ctx.barrier(); // rank 1 never arrives
        }
    });
    assert!(msg.contains("rupcxx-check"), "panic was: {msg}");
    assert!(
        kinds(&sink).contains(&FindingKind::BarrierMismatch),
        "expected a barrier mismatch, got:\n{}",
        messages(&sink)
    );
}

// ---- determinism --------------------------------------------------------

/// The same racy program produces the identical finding set on repeated
/// runs — reports are keyed on global addresses and rank ids, never on
/// host pointers or arrival order.
#[test]
fn findings_are_deterministic_across_runs() {
    let run = || {
        let sink = new_sink();
        spmd(cfg(2, CheckConfig::race().with_sink(sink.clone())), |ctx| {
            ctx.fabric()
                .put_u64(ctx.rank(), GlobalAddr::new(0, 128), ctx.rank() as u64);
        });
        messages(&sink)
    };
    let first = run();
    for _ in 0..4 {
        assert_eq!(run(), first);
    }
}
