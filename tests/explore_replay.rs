//! Replay determinism: the committed `tests/schedules/*.sched` files —
//! each the ddmin-minimized schedule exploration produced for one corpus
//! bug — must reproduce their finding *byte-for-byte identically* on
//! every replay. This is the regression contract: a minimized schedule
//! is only useful as a test if replaying it is deterministic.

use rupcxx_explore::corpus::{config_for, find, ENTRIES};
use rupcxx_explore::run_schedule;
use rupcxx_net::Schedule;

fn load(name: &str) -> Schedule {
    let path = format!(
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/schedules/{}.sched"),
        name
    );
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{path}: {e} (run the ignored regen_schedules test)"));
    Schedule::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Replay one committed schedule three times; the finding transcript must
/// be byte-identical every time and contain the planted bug.
fn assert_deterministic_replay(name: &str) {
    let e = find(name);
    let cfg = config_for(e);
    let schedule = load(name);
    let transcripts: Vec<String> = (0..3)
        .map(|_| {
            let out = run_schedule(&cfg, schedule.clone(), &e.make);
            assert!(
                out.verdict.contains(&e.expect),
                "{name}: committed schedule lost the bug, got {:?}",
                out.verdict
            );
            out.findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        })
        .collect();
    assert!(!transcripts[0].is_empty(), "{name}: no findings recorded");
    assert_eq!(transcripts[0], transcripts[1], "{name}: replay 2 diverged");
    assert_eq!(transcripts[0], transcripts[2], "{name}: replay 3 diverged");
}

#[test]
fn smoke_replay_race_put_vs_read() {
    assert_deterministic_replay("race_put_vs_read");
}

#[test]
fn replay_race_write_write() {
    assert_deterministic_replay("race_write_write");
}

#[test]
fn replay_race_agg_put() {
    assert_deterministic_replay("race_agg_put");
}

#[test]
fn replay_lock_across_barrier() {
    assert_deterministic_replay("lock_across_barrier");
}

#[test]
fn replay_deadlock_abba() {
    assert_deterministic_replay("deadlock_abba");
}

#[test]
fn replay_deadlock_self_reacquire() {
    assert_deterministic_replay("deadlock_self_reacquire");
}

#[test]
fn replay_event_never_signaled() {
    assert_deterministic_replay("event_never_signaled");
}

#[test]
fn replay_barrier_mismatch() {
    assert_deterministic_replay("barrier_mismatch");
}

#[test]
fn smoke_replay_order_sensitive_event() {
    assert_deterministic_replay("order_sensitive_event");
}

/// Every corpus entry has a committed schedule, and the
/// schedule-dependent showcase's is genuinely non-canonical — the proof
/// that exploration (not a lucky baseline) produced it.
#[test]
fn committed_schedules_cover_the_corpus() {
    for e in ENTRIES {
        let s = load(e.name);
        assert!(
            s.random_seed.is_none(),
            "{}: minimized schedules are explicit",
            e.name
        );
        if e.schedule_dependent {
            assert!(!s.picks.is_empty(), "{}: expected reordering picks", e.name);
        } else {
            assert!(
                s.picks.is_empty(),
                "{}: expected the canonical schedule",
                e.name
            );
        }
    }
}
