//! Property-based tests of the domain calculus and data-layout math
//! (proptest): the invariants the multidimensional array library and the
//! block-cyclic layout rely on.

use rupcxx_ndarray::{Point, RectDomain};
use rupcxx_util::prop as proptest;
use rupcxx_util::prop::prelude::*;

fn small_domain() -> impl Strategy<Value = RectDomain<2>> {
    (-20i64..20, -20i64..20, 0i64..15, 0i64..15, 1i64..4, 1i64..4).prop_map(
        |(lx, ly, ex, ey, sx, sy)| {
            RectDomain::strided(
                Point::new([lx, ly]),
                Point::new([lx + ex, ly + ey]),
                Point::new([sx, sy]),
            )
        },
    )
}

proptest! {
    #[test]
    fn domain_size_equals_point_count(d in small_domain()) {
        let mut n = 0usize;
        d.for_each(|_| n += 1);
        prop_assert_eq!(n, d.size());
    }

    #[test]
    fn every_iterated_point_is_contained(d in small_domain()) {
        d.for_each(|p| assert!(d.contains(p), "{p} not in {d}"));
    }

    #[test]
    fn points_matches_for_each(d in small_domain()) {
        let mut via_fe = Vec::new();
        d.for_each(|p| via_fe.push(p));
        let via_pts: Vec<_> = d.points().collect();
        prop_assert_eq!(via_fe, via_pts);
    }

    #[test]
    fn intersection_is_conjunction_of_membership(
        lx in -10i64..10, ly in -10i64..10, ex in 0i64..12, ey in 0i64..12,
        mx in -10i64..10, my in -10i64..10, fx in 0i64..12, fy in 0i64..12,
    ) {
        // Unit stride so lattices always align.
        let a = RectDomain::new(Point::new([lx, ly]), Point::new([lx + ex, ly + ey]));
        let b = RectDomain::new(Point::new([mx, my]), Point::new([mx + fx, my + fy]));
        let i = a.intersect(&b);
        for x in (lx - 1)..(lx + ex + 1) {
            for y in (ly - 1)..(ly + ey + 1) {
                let p = Point::new([x, y]);
                prop_assert_eq!(i.contains(p), a.contains(p) && b.contains(p));
            }
        }
    }

    #[test]
    fn intersection_commutes_and_is_idempotent(d in small_domain()) {
        let d2 = d;
        let i = d.intersect(&d2);
        prop_assert_eq!(i.size(), d.size());
        // With a translated copy (preserving lattice alignment).
        let t = d.translate(Point::new([d.stride()[0], 0]));
        let ab = d.intersect(&t);
        let ba = t.intersect(&d);
        prop_assert_eq!(ab.size(), ba.size());
        ab.for_each(|p| assert!(ba.contains(p)));
    }

    #[test]
    fn bounding_union_contains_both(
        lx in -10i64..10, ly in -10i64..10, ex in 0i64..10, ey in 0i64..10,
        mx in -10i64..10, my in -10i64..10, fx in 0i64..10, fy in 0i64..10,
    ) {
        let a = RectDomain::new(Point::new([lx, ly]), Point::new([lx + ex, ly + ey]));
        let b = RectDomain::new(Point::new([mx, my]), Point::new([mx + fx, my + fy]));
        let u = a.bounding_union(&b);
        a.for_each(|p| assert!(u.contains(p)));
        b.for_each(|p| assert!(u.contains(p)));
    }

    #[test]
    fn translate_roundtrip(d in small_domain(), tx in -30i64..30, ty in -30i64..30) {
        let t = Point::new([tx, ty]);
        let back = d.translate(t).translate(-t);
        prop_assert_eq!(back, d);
    }

    #[test]
    fn face_constructions_are_consistent(e in 3i64..10) {
        let whole = RectDomain::new(Point::<3>::zero(), Point::splat(e));
        let inner = whole.shrink(1);
        prop_assert_eq!(inner.size() as i64, (e - 2).pow(3));
        for dim in 0..3 {
            for side in [-1i8, 1] {
                // Interior faces are subsets of the domain with the right size.
                let inf = whole.interior_face(dim, side, 1);
                prop_assert_eq!(inf.size() as i64, e * e);
                inf.for_each(|p| assert!(whole.contains(p)));
                // Exterior faces are disjoint from the domain…
                let exf = whole.exterior_face(dim, side, 1);
                exf.for_each(|p| assert!(!whole.contains(p)));
                // …and the exterior faces of the shrunk interior lie
                // inside the original domain (the ghost-shell property).
                let ghost = inner.exterior_face(dim, side, 1);
                ghost.for_each(|p| assert!(whole.contains(p)));
                // Ghost slab = matching interior face of the whole domain,
                // narrowed to the inner cross-section.
                prop_assert_eq!(ghost.size() as i64, (e - 2) * (e - 2));
            }
        }
        // Interior points are in no ghost slab.
        inner.for_each(|p| {
            for dim in 0..3 {
                for side in [-1i8, 1] {
                    assert!(!inner.exterior_face(dim, side, 1).contains(p));
                }
            }
        });
    }

    #[test]
    fn rows_cover_domain_exactly(d in small_domain()) {
        let rows = d.rows();
        let total: usize = rows.iter().map(|&(_, len)| len).sum();
        prop_assert_eq!(total, d.size());
        // Each row head is in the domain (when non-empty).
        for (head, _) in rows {
            prop_assert!(d.contains(head));
        }
    }

    #[test]
    fn point_algebra_group_laws(
        a in proptest::array::uniform3(-100i64..100),
        b in proptest::array::uniform3(-100i64..100),
    ) {
        let p = Point::new(a);
        let q = Point::new(b);
        prop_assert_eq!(p + q, q + p);
        prop_assert_eq!(p - p, Point::zero());
        prop_assert_eq!((p + q) - q, p);
        prop_assert_eq!(-(-p), p);
        prop_assert_eq!(p * 2, p + p);
    }

    #[test]
    fn permute_inverse_restores(d in small_domain()) {
        // For 2-D, [1,0] is its own inverse.
        prop_assert_eq!(d.permute([1, 0]).permute([1, 0]), d);
    }
}
