//! Property tests of the two-sided matching layer (against the MPI
//! non-overtaking rule) and the event-driven task-DAG machinery.

use rupcxx::prelude::*;
use rupcxx_mpi::MpiWorld;
use rupcxx_util::prop as proptest;
use rupcxx_util::prop::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn cfg(n: usize) -> RuntimeConfig {
    RuntimeConfig::new(n).segment_mib(2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Non-overtaking: per (source, tag) stream, messages are received in
    /// send order no matter how tags interleave and regardless of the
    /// eager/rendezvous protocol split.
    #[test]
    fn mpi_per_tag_fifo_under_random_traffic(
        tags in proptest::collection::vec(0u64..4, 1..24),
        eager_limit in prop_oneof![Just(0usize), Just(16usize), Just(usize::MAX)],
    ) {
        let world = MpiWorld::with_eager_limit(2, eager_limit);
        let tags2 = tags.clone();
        let received = spmd(cfg(2), move |ctx| {
            let comm = world.comm(ctx);
            if ctx.rank() == 0 {
                // Send the i-th message of tag t with payload = sequence
                // number within that tag (plus filler to cross the
                // rendezvous threshold sometimes). Non-blocking sends +
                // waitall: the receiver posts tags out of order, so
                // blocking sends would be the classic unsafe-MPI deadlock
                // (which this layer faithfully reproduces).
                let mut per_tag = [0u8; 4];
                let mut reqs = Vec::new();
                for &t in &tags2 {
                    let seq = per_tag[t as usize];
                    per_tag[t as usize] += 1;
                    let mut payload = vec![seq; 3 + (seq as usize % 30)];
                    payload[0] = seq;
                    reqs.push(comm.isend(1, t, &payload));
                }
                comm.waitall_sends(&reqs);
                vec![]
            } else {
                // Post receives tag-by-tag in a different global order
                // (reversed), checking per-tag sequence numbers.
                let mut counts = [0usize; 4];
                for &t in &tags2 {
                    counts[t as usize] += 1;
                }
                let mut got: Vec<(u64, u8)> = Vec::new();
                for t in (0u64..4).rev() {
                    for _ in 0..counts[t as usize] {
                        let (_, data) = comm.recv(0, t);
                        got.push((t, data[0]));
                    }
                }
                got
            }
        });
        let got = &received[1];
        let mut next = [0u8; 4];
        for &(t, seq) in got {
            prop_assert_eq!(seq, next[t as usize], "tag {} out of order", t);
            next[t as usize] += 1;
        }
        let total: usize = next.iter().map(|&c| c as usize).sum();
        prop_assert_eq!(total, tags.len());
    }

    /// Level-structured event DAGs: every task of level i completes
    /// before any task of level i+1 starts, for random level widths and
    /// random target ranks.
    #[test]
    fn event_dag_levels_execute_in_order(
        widths in proptest::collection::vec(1usize..4, 1..5),
        rank_salt in any::<u64>(),
    ) {
        let widths2 = widths.clone();
        let violations = Arc::new(AtomicUsize::new(0));
        let executed = Arc::new(AtomicUsize::new(0));
        let (v2, e2) = (violations.clone(), executed.clone());
        spmd(cfg(3), move |ctx| {
            if ctx.rank() != 0 {
                ctx.barrier();
                return;
            }
            // level_done[i] counts completed tasks of level i.
            let done: Arc<Vec<AtomicUsize>> =
                Arc::new((0..widths2.len()).map(|_| AtomicUsize::new(0)).collect());
            let events: Vec<Event> = (0..widths2.len()).map(|_| Event::new()).collect();
            for (level, &w) in widths2.iter().enumerate() {
                for j in 0..w {
                    let place = ((rank_salt as usize) + level * 3 + j) % ctx.ranks();
                    let done = done.clone();
                    let v = v2.clone();
                    let e = e2.clone();
                    let prev_width = if level > 0 { widths2[level - 1] } else { 0 };
                    let task = move |_: &Ctx| {
                        // All previous-level tasks must already be done.
                        if level > 0 && done[level - 1].load(Ordering::SeqCst) != prev_width {
                            v.fetch_add(1, Ordering::SeqCst);
                        }
                        e.fetch_add(1, Ordering::SeqCst);
                        done[level].fetch_add(1, Ordering::SeqCst);
                    };
                    if level == 0 {
                        async_with_event(ctx, place, &events[0], task);
                    } else {
                        async_after(ctx, place, &events[level - 1], Some(&events[level]), task);
                    }
                }
            }
            events.last().unwrap().wait(ctx);
            ctx.barrier();
        });
        prop_assert_eq!(violations.load(Ordering::SeqCst), 0);
        prop_assert_eq!(executed.load(Ordering::SeqCst), widths.iter().sum::<usize>());
    }

    /// Finish scopes with a random mix of plain and value-returning
    /// spawns always complete with every task executed exactly once.
    #[test]
    fn finish_scope_random_spawn_mix(
        plan in proptest::collection::vec((0usize..4, any::<bool>()), 0..12),
    ) {
        let plan2 = plan.clone();
        let ran = Arc::new(AtomicUsize::new(0));
        let r2 = ran.clone();
        let sums = spmd(cfg(4), move |ctx| {
            if ctx.rank() != 0 {
                return 0u64;
            }
            ctx.finish(|fs| {
                let mut futures = Vec::new();
                for &(place, with_result) in &plan2 {
                    let r = r2.clone();
                    if with_result {
                        futures.push(fs.spawn_with_result(place, move |tctx| {
                            r.fetch_add(1, Ordering::SeqCst);
                            tctx.rank() as u64
                        }));
                    } else {
                        fs.spawn(place, move |_| {
                            r.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                }
                futures.into_iter().map(|f| f.get(ctx)).sum::<u64>()
            })
        });
        prop_assert_eq!(ran.load(Ordering::SeqCst), plan.len());
        let expect: u64 = plan
            .iter()
            .filter(|&&(_, with)| with)
            .map(|&(p, _)| p as u64)
            .sum();
        prop_assert_eq!(sums[0], expect);
    }
}
