//! Clean-benchmark validation of `rupcxx-check`: the paper benchmarks
//! are correctly synchronized, so the checker must report *zero* findings
//! on them — with and without aggregation, and under chaos (fault
//! injection), where retransmission delays must not manufacture false
//! happens-before violations or false deadlocks.

use rupcxx::prelude::*;
use rupcxx_apps::{gups, sample_sort, stencil};
use rupcxx_check::{new_sink, CheckConfig, FindingKind, FindingSink};
use rupcxx_net::{AggConfig, CacheConfig, FaultPlan};

fn assert_clean(sink: &FindingSink, what: &str) {
    let findings = sink.lock();
    assert!(
        findings.is_empty(),
        "{what}: expected zero findings, got:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn checked(n: usize, sink: &FindingSink) -> RuntimeConfig {
    RuntimeConfig::new(n)
        .segment_mib(8)
        .with_check(CheckConfig::all().with_sink(sink.clone()))
}

#[test]
fn gups_plain_is_clean() {
    let sink = new_sink();
    let out = spmd(checked(4, &sink), |ctx| {
        gups::run(
            ctx,
            &gups::GupsConfig {
                table_size: 1 << 10,
                updates_per_rank: 1_000,
                variant: gups::Variant::Upcxx,
                verify: true,
            },
        )
    });
    assert!(out.iter().all(|r| r.verified));
    assert_clean(&sink, "gups plain");
}

#[test]
fn gups_aggregated_is_clean() {
    let sink = new_sink();
    let out = spmd(
        checked(4, &sink).with_agg(AggConfig::new().flush_count(32)),
        |ctx| {
            gups::run(
                ctx,
                &gups::GupsConfig {
                    table_size: 1 << 10,
                    updates_per_rank: 1_000,
                    variant: gups::Variant::UpcxxAgg,
                    verify: true,
                },
            )
        },
    );
    assert!(out.iter().all(|r| r.verified));
    assert_clean(&sink, "gups aggregated");
}

#[test]
fn stencil_is_clean() {
    let sink = new_sink();
    let reference = stencil::serial_reference((8, 8, 4), 2, 0.1);
    let out = spmd(checked(4, &sink), |ctx| {
        stencil::run(
            ctx,
            &stencil::StencilConfig {
                local_edge: 4,
                grid: (2, 2, 1),
                iters: 2,
                variant: stencil::Variant::Optimized,
                c: 0.1,
            },
        )
    });
    assert!((out[0].checksum - reference).abs() < 1e-9);
    assert_clean(&sink, "stencil");
}

#[test]
fn sample_sort_is_clean() {
    let sink = new_sink();
    let out = spmd(
        checked(4, &sink).with_agg(AggConfig::new().flush_count(32)),
        |ctx| {
            sample_sort::run(
                ctx,
                &sample_sort::SortConfig {
                    keys_per_rank: 2_000,
                    oversample: 32,
                    variant: sample_sort::Variant::UpcxxAgg,
                    seed: 7,
                },
            )
        },
    );
    assert!(out.iter().all(|r| r.verified));
    assert_clean(&sink, "sample sort");
}

/// Read cache + checker: the cache invalidates at every sync point, so
/// correctly synchronized benchmarks must stay clean with it enabled —
/// hits must not manufacture races, and line fills must not claim bytes
/// the program never read (false sharing with the owner's writes).
#[test]
fn gups_cached_is_clean() {
    let sink = new_sink();
    let out = spmd(
        checked(4, &sink).with_cache(CacheConfig::default()),
        |ctx| {
            gups::run(
                ctx,
                &gups::GupsConfig {
                    table_size: 1 << 10,
                    updates_per_rank: 1_000,
                    variant: gups::Variant::Upcxx,
                    verify: true,
                },
            )
        },
    );
    assert!(out.iter().all(|r| r.verified));
    assert_clean(&sink, "gups cached");
}

#[test]
fn stencil_cached_is_clean() {
    let sink = new_sink();
    let reference = stencil::serial_reference((8, 8, 4), 2, 0.1);
    let out = spmd(
        checked(4, &sink).with_cache(CacheConfig::default()),
        |ctx| {
            stencil::run(
                ctx,
                &stencil::StencilConfig {
                    local_edge: 4,
                    grid: (2, 2, 1),
                    iters: 2,
                    variant: stencil::Variant::Optimized,
                    c: 0.1,
                },
            )
        },
    );
    assert!((out[0].checksum - reference).abs() < 1e-9);
    assert_clean(&sink, "stencil cached");
}

/// Sensitivity: a planted stale read must be caught. The bypass knob
/// defeats the sync-point invalidation, so after the writer updates a
/// word *with* proper barrier synchronization, the reader's next access
/// hits the old line — exactly the coherence violation
/// `StaleCachedRead` exists to flag.
#[test]
fn planted_stale_cached_read_is_caught() {
    let sink = new_sink();
    let cfg = RuntimeConfig::new(2)
        .segment_mib(1)
        .with_check(CheckConfig::all().with_sink(sink.clone()))
        .with_cache(CacheConfig::default());
    spmd(cfg, |ctx| {
        ctx.fabric()
            .endpoint(ctx.rank())
            .cache()
            .expect("cache installed")
            .set_bypass_sync_invalidation(true);
        let a = SharedArray::<u64>::new(ctx, 4, 1);
        if ctx.rank() == 1 {
            a.write(ctx, 1, 5);
        }
        ctx.barrier();
        if ctx.rank() == 0 {
            assert_eq!(a.read(ctx, 1), 5, "line fill");
        }
        ctx.barrier(); // orders the fill before the write...
        if ctx.rank() == 1 {
            a.write(ctx, 1, 9);
        }
        ctx.barrier(); // ...and the write before the re-read
        if ctx.rank() == 0 {
            // The bypassed invalidation leaves the old line in place.
            assert_eq!(a.read(ctx, 1), 5, "stale by construction");
        }
        ctx.barrier();
        a.destroy(ctx);
    });
    let findings = sink.lock();
    assert!(
        findings
            .iter()
            .any(|f| f.kind == FindingKind::StaleCachedRead),
        "no stale-cached-read reported, got: {:?}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>()
    );
}

/// Chaos + checker: recoverable fault injection (drops, dups, delays)
/// perturbs delivery timing but not the happens-before relation — clock
/// snapshots ride retransmitted frames, so a correctly synchronized run
/// must stay clean, and in-flight retransmissions must never be
/// mistaken for a deadlock.
#[test]
fn chaos_runs_are_clean() {
    for seed in [101u64, 202, 303] {
        let sink = new_sink();
        let plan = FaultPlan::new(seed).drop(0.05).dup(0.03).reorder(0.05);
        let out = spmd(checked(4, &sink).with_faults(plan), |ctx| {
            let r = gups::run(
                ctx,
                &gups::GupsConfig {
                    table_size: 1 << 10,
                    updates_per_rank: 500,
                    variant: gups::Variant::Upcxx,
                    verify: true,
                },
            );
            ctx.barrier();
            r
        });
        assert!(out.iter().all(|r| r.verified), "seed {seed}");
        assert_clean(&sink, &format!("chaos seed {seed}"));
    }
}
