//! Clean-benchmark validation of `rupcxx-check`: the paper benchmarks
//! are correctly synchronized, so the checker must report *zero* findings
//! on them — with and without aggregation, and under chaos (fault
//! injection), where retransmission delays must not manufacture false
//! happens-before violations or false deadlocks.

use rupcxx::prelude::*;
use rupcxx_apps::{gups, sample_sort, stencil};
use rupcxx_check::{new_sink, CheckConfig, FindingSink};
use rupcxx_net::{AggConfig, FaultPlan};

fn assert_clean(sink: &FindingSink, what: &str) {
    let findings = sink.lock();
    assert!(
        findings.is_empty(),
        "{what}: expected zero findings, got:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn checked(n: usize, sink: &FindingSink) -> RuntimeConfig {
    RuntimeConfig::new(n)
        .segment_mib(8)
        .with_check(CheckConfig::all().with_sink(sink.clone()))
}

#[test]
fn gups_plain_is_clean() {
    let sink = new_sink();
    let out = spmd(checked(4, &sink), |ctx| {
        gups::run(
            ctx,
            &gups::GupsConfig {
                table_size: 1 << 10,
                updates_per_rank: 1_000,
                variant: gups::Variant::Upcxx,
                verify: true,
            },
        )
    });
    assert!(out.iter().all(|r| r.verified));
    assert_clean(&sink, "gups plain");
}

#[test]
fn gups_aggregated_is_clean() {
    let sink = new_sink();
    let out = spmd(
        checked(4, &sink).with_agg(AggConfig::new().flush_count(32)),
        |ctx| {
            gups::run(
                ctx,
                &gups::GupsConfig {
                    table_size: 1 << 10,
                    updates_per_rank: 1_000,
                    variant: gups::Variant::UpcxxAgg,
                    verify: true,
                },
            )
        },
    );
    assert!(out.iter().all(|r| r.verified));
    assert_clean(&sink, "gups aggregated");
}

#[test]
fn stencil_is_clean() {
    let sink = new_sink();
    let reference = stencil::serial_reference((8, 8, 4), 2, 0.1);
    let out = spmd(checked(4, &sink), |ctx| {
        stencil::run(
            ctx,
            &stencil::StencilConfig {
                local_edge: 4,
                grid: (2, 2, 1),
                iters: 2,
                variant: stencil::Variant::Optimized,
                c: 0.1,
            },
        )
    });
    assert!((out[0].checksum - reference).abs() < 1e-9);
    assert_clean(&sink, "stencil");
}

#[test]
fn sample_sort_is_clean() {
    let sink = new_sink();
    let out = spmd(
        checked(4, &sink).with_agg(AggConfig::new().flush_count(32)),
        |ctx| {
            sample_sort::run(
                ctx,
                &sample_sort::SortConfig {
                    keys_per_rank: 2_000,
                    oversample: 32,
                    variant: sample_sort::Variant::UpcxxAgg,
                    seed: 7,
                },
            )
        },
    );
    assert!(out.iter().all(|r| r.verified));
    assert_clean(&sink, "sample sort");
}

/// Chaos + checker: recoverable fault injection (drops, dups, delays)
/// perturbs delivery timing but not the happens-before relation — clock
/// snapshots ride retransmitted frames, so a correctly synchronized run
/// must stay clean, and in-flight retransmissions must never be
/// mistaken for a deadlock.
#[test]
fn chaos_runs_are_clean() {
    for seed in [101u64, 202, 303] {
        let sink = new_sink();
        let plan = FaultPlan::new(seed).drop(0.05).dup(0.03).reorder(0.05);
        let out = spmd(checked(4, &sink).with_faults(plan), |ctx| {
            let r = gups::run(
                ctx,
                &gups::GupsConfig {
                    table_size: 1 << 10,
                    updates_per_rank: 500,
                    variant: gups::Variant::Upcxx,
                    verify: true,
                },
            );
            ctx.barrier();
            r
        });
        assert!(out.iter().all(|r| r.verified), "seed {seed}");
        assert_clean(&sink, &format!("chaos seed {seed}"));
    }
}
