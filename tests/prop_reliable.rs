//! Property tests of the reliable delivery layer (proptest): for an
//! arbitrary seeded fault schedule and an arbitrary bidirectional
//! message schedule, every active message is delivered exactly once and
//! in per-link FIFO order, and the fault accounting balances
//! (`retransmits == wire_drops` at quiescence). When a property fails,
//! the failing schedule is shrunk with `shrink_vec` to a 1-minimal
//! counterexample before reporting.

use rupcxx_net::{AmPayload, Fabric, FabricConfig, FaultPlan, LinkRule};
use rupcxx_trace::TraceConfig;
use rupcxx_util::prop as proptest;
use rupcxx_util::prop::prelude::*;
use rupcxx_util::Bytes;
use std::sync::Arc;

/// One schedule entry: `reverse` selects the 1→0 direction, `id` is the
/// payload identity checked on arrival.
type Op = (bool, u16);

fn faulty_fabric(plan: FaultPlan) -> Arc<Fabric> {
    Fabric::new(FabricConfig {
        ranks: 2,
        segment_bytes: 4096,
        simnet: None,
        trace: TraceConfig::off(),
        faults: Some(plan),
        agg: None,
        check: None,
        cache: None,
        prof: None,
        schedule: None,
        remote: None,
    })
}

/// Pump + drain `me` until its links are quiescent; `None` if the pump
/// budget runs out (a hang) or the fabric reported a failure.
fn drain_rank(f: &Fabric, me: usize) -> Option<Vec<u16>> {
    let mut got = Vec::new();
    for _ in 0..100_000 {
        f.pump_incoming(me);
        // `drain()` takes the whole inbox in one consistent snapshot
        // (the racy alternative is a try_recv/pending read pair).
        for m in f.endpoint(me).drain() {
            if let AmPayload::Handler { id, .. } = m.payload {
                got.push(id);
            }
        }
        if f.has_failed() {
            return None;
        }
        if f.links_quiescent(me) && f.endpoint(me).pending() == 0 {
            return Some(got);
        }
    }
    None
}

/// The property: run `sched` through a 2-rank fabric under `plan`; true
/// when both directions deliver exactly once, in order, with balanced
/// retransmit accounting.
fn delivers_exactly_once(plan: &FaultPlan, sched: &[Op]) -> bool {
    let f = faulty_fabric(plan.clone());
    let mut expect = [Vec::new(), Vec::new()];
    for &(reverse, id) in sched {
        let (src, dst) = if reverse { (1, 0) } else { (0, 1) };
        expect[dst].push(id);
        f.send_am(
            src,
            dst,
            AmPayload::Handler {
                id,
                args: Bytes::new(),
            },
        );
    }
    // Each rank drives retransmission for its own incoming links, so
    // the two drains are independent and can run in sequence.
    let (Some(got0), Some(got1)) = (drain_rank(&f, 0), drain_rank(&f, 1)) else {
        return false;
    };
    let c = f.total_counts();
    got0 == expect[0] && got1 == expect[1] && c.retransmits == c.wire_drops
}

/// Check the property; on failure, shrink the schedule to a 1-minimal
/// counterexample and panic with a reproducible report.
fn check_or_shrink(plan: FaultPlan, sched: Vec<Op>) {
    if delivers_exactly_once(&plan, &sched) {
        return;
    }
    let original_len = sched.len();
    let minimal = proptest::shrink_vec(sched, |s| !delivers_exactly_once(&plan, s));
    panic!(
        "reliable delivery violated under {plan:?}; \
         minimal failing schedule ({} of {} ops): {minimal:?}",
        minimal.len(),
        original_len,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_fault_schedules_deliver_exactly_once_in_order(
        seed in 0u64..1_000_000,
        drop_ppm in 0u32..400_000,
        dup_ppm in 0u32..200_000,
        reorder_ppm in 0u32..300_000,
        delay_ppm in 0u32..200_000,
        sched in proptest::collection::vec((any::<bool>(), 0u16..512), 1..80),
    ) {
        let plan = FaultPlan::new(seed)
            .drop(drop_ppm as f64 / 1e6)
            .dup(dup_ppm as f64 / 1e6)
            .reorder(reorder_ppm as f64 / 1e6)
            .delay(delay_ppm as f64 / 1e6);
        check_or_shrink(plan, sched);
    }

    #[test]
    fn asymmetric_link_rules_keep_both_directions_correct(
        seed in 0u64..1_000_000,
        drop_ppm in 100_000u32..500_000,
        sched in proptest::collection::vec((any::<bool>(), 0u16..512), 1..60),
    ) {
        // Faults only on 0->1; the clean reverse direction must be
        // unaffected and the lossy one still exactly-once.
        let plan = FaultPlan::new(seed).link(
            0,
            1,
            LinkRule { drop_ppm, dup_ppm: 100_000, ..Default::default() },
        );
        check_or_shrink(plan, sched);
    }

    #[test]
    fn dead_link_reports_failure_instead_of_hanging(
        seed in 0u64..1_000_000,
        n in 1usize..20,
    ) {
        // Every attempt on 0->1 is dropped: the receiver's pump must
        // give up after `max_attempts` and record `PeerUnreachable` —
        // never spin forever, never deliver.
        let plan = FaultPlan::new(seed)
            .link(0, 1, LinkRule { drop_ppm: 1_000_000, ..Default::default() })
            .max_attempts(4);
        let f = faulty_fabric(plan);
        for id in 0..n as u16 {
            f.send_am(0, 1, AmPayload::Handler { id, args: Bytes::new() });
        }
        prop_assert!(drain_rank(&f, 1).is_none(), "dead link cannot quiesce cleanly");
        let e = f.failure().expect("failure must carry a report");
        prop_assert_eq!((e.src, e.dst), (0, 1));
        prop_assert!(e.to_string().contains("unreachable"));
    }
}

/// The shrinker itself must reject a healthy schedule (guard against a
/// property that silently never fails: `shrink_vec` asserts the input
/// fails).
#[test]
fn clean_plan_never_triggers_shrinking() {
    let plan = FaultPlan::new(9); // all probabilities zero
    let sched: Vec<Op> = (0..50).map(|i| (i % 3 == 0, i as u16)).collect();
    assert!(delivers_exactly_once(&plan, &sched));
}
