//! Integration tests of per-destination aggregation end to end: GUPS in
//! aggregated mode must coalesce its fine-grained updates into at least
//! 8× fewer wire frames than logical updates (the `CommStats::agg_*`
//! counters), while producing a bit-for-bit identical table; with
//! aggregation disabled — or enabled but unused — fabric op counts must
//! be unchanged.

use rupcxx_apps::gups::{self, GupsConfig, Variant};
use rupcxx_net::{AggConfig, CommCounts};
use rupcxx_runtime::{spmd, RuntimeConfig};
use rupcxx_trace::TraceConfig;
use rupcxx_util::GupsRng;

const RANKS: usize = 4;

fn gups_cfg(variant: Variant) -> GupsConfig {
    GupsConfig {
        table_size: 1 << 12,
        updates_per_rank: 4000,
        variant,
        verify: true,
    }
}

/// Run GUPS and return each rank's result plus its own endpoint's
/// initiator-side counters (snapshotted after the final collective, so
/// this rank initiates nothing afterwards and the counts are exact).
fn run(rt: RuntimeConfig, variant: Variant) -> Vec<(gups::GupsResult, CommCounts)> {
    spmd(rt, move |ctx| {
        let r = gups::run(ctx, &gups_cfg(variant));
        ctx.barrier();
        let counts = ctx.fabric().endpoint(ctx.rank()).stats.snapshot();
        (r, counts)
    })
}

/// Replay `rank`'s GUPS index stream and count updates whose cyclic
/// owner is remote, doubled for the verify pass (which replays the same
/// stream). Note the fraction is far from `(RANKS-1)/RANKS`: the HPCC
/// LFSR shifts left, so its low bits — the cyclic owner under block
/// size 1 — are biased toward zero, and rank 0 owns over half the
/// indices of every stream.
fn expected_remote_updates(rank: usize) -> u64 {
    let cfg = gups_cfg(Variant::UpcxxAgg);
    let mask = cfg.table_size - 1;
    let mut rng = GupsRng::starting_at((rank * cfg.updates_per_rank) as i64);
    let remote = (0..cfg.updates_per_rank)
        .filter(|_| (rng.next_u64() as usize & mask) % RANKS != rank)
        .count();
    2 * remote as u64
}

fn rt() -> RuntimeConfig {
    let mut rt = RuntimeConfig::new(RANKS).segment_mib(1);
    // Pin the configuration regardless of the ambient RUPCXX_* env.
    rt.agg = None;
    rt.faults = None;
    rt.trace = TraceConfig::off();
    rt
}

#[test]
fn aggregated_gups_coalesces_8x_with_identical_results() {
    let plain = run(rt(), Variant::Upcxx);
    let agg = run(rt().with_agg(AggConfig::new()), Variant::UpcxxAgg);

    // Bit-for-bit identical table: xor is commutative/associative, so
    // delivery order cannot change the checksum — and the involution
    // verify pass must restore Table[i] = i on every rank.
    assert!(agg.iter().all(|(r, _)| r.verified));
    assert!(plain.iter().all(|(r, _)| r.verified));
    assert_eq!(plain[0].0.checksum, agg[0].0.checksum);

    for (rank, (_, c)) in agg.iter().enumerate() {
        assert!(c.agg_batches > 0, "rank {rank} never batched: {c:?}");
        // The tentpole claim: >= 8x fewer wire frames than logical
        // updates (default thresholds give ~64 frames per batch).
        assert!(
            c.agg_ops >= 8 * c.agg_batches,
            "rank {rank}: {} logical ops in {} batches is under 8x",
            c.agg_ops,
            c.agg_batches
        );
        // Every remote update — and nothing else — went through the
        // aggregation layer: agg_ops must equal the remote-index count
        // of this rank's deterministic update stream, replayed twice
        // (timed pass + involution verify pass).
        assert_eq!(
            c.agg_ops,
            expected_remote_updates(rank),
            "rank {rank}: {c:?}"
        );
    }
    // Per-op GUPS never touches the aggregation layer.
    for (_, c) in &plain {
        assert_eq!((c.agg_ops, c.agg_batches), (0, 0));
    }
}

#[test]
fn enabled_but_unused_aggregation_leaves_op_counts_unchanged() {
    // The per-op variant on an aggregation-enabled fabric must generate
    // exactly the traffic of the plain fabric: buffers stay empty, every
    // flush hook is a single untaken branch.
    let plain = run(rt(), Variant::Upcxx);
    let agg_on = run(rt().with_agg(AggConfig::new()), Variant::Upcxx);
    assert_eq!(plain[0].0.checksum, agg_on[0].0.checksum);
    for ((_, p), (_, a)) in plain.iter().zip(&agg_on) {
        assert_eq!((a.agg_ops, a.agg_batches), (0, 0));
        // Initiator-side counters are deterministic per rank; receiver
        // counters (ams_handled) can race the post-run snapshot.
        assert_eq!(p.puts, a.puts);
        assert_eq!(p.put_bytes, a.put_bytes);
        assert_eq!(p.gets, a.gets);
        assert_eq!(p.get_bytes, a.get_bytes);
        assert_eq!(p.ams_sent, a.ams_sent);
        assert_eq!(p.am_bytes, a.am_bytes);
        assert_eq!(p.local_ops, a.local_ops);
    }
}

#[test]
fn agg_variant_without_agg_config_falls_through() {
    // UpcxxAgg on an unaggregated fabric: every buffered entry point
    // degenerates to the direct op; results stay correct and nothing is
    // counted as batched.
    let out = run(rt(), Variant::UpcxxAgg);
    assert!(out.iter().all(|(r, _)| r.verified));
    for (_, c) in &out {
        assert_eq!((c.agg_ops, c.agg_batches), (0, 0));
    }
    let plain = run(rt(), Variant::Upcxx);
    assert_eq!(plain[0].0.checksum, out[0].0.checksum);
}

#[test]
fn batch_occupancy_metrics_match_stats() {
    // In metrics mode every flushed batch records its frame count: the
    // histogram's sample count must equal the endpoint's batch counter,
    // and the mean occupancy must reflect the >= 8x coalescing.
    let rt = rt()
        .with_agg(AggConfig::new())
        .with_trace(TraceConfig::metrics());
    let out = spmd(rt, |ctx| {
        let r = gups::run(ctx, &gups_cfg(Variant::UpcxxAgg));
        ctx.barrier();
        let stats = ctx.fabric().endpoint(ctx.rank()).stats.snapshot();
        let metrics = ctx.trace().metrics.snapshot();
        (r, stats, metrics)
    });
    for (rank, (r, stats, metrics)) in out.iter().enumerate() {
        assert!(r.verified);
        assert_eq!(
            metrics.batch_frames.count, stats.agg_batches,
            "rank {rank}: histogram samples != batches sent"
        );
        assert_eq!(
            metrics.batch_frames.sum, stats.agg_ops,
            "rank {rank}: histogram mass != logical ops"
        );
        assert!(metrics.batch_frames.mean() >= 8.0, "rank {rank}");
    }
}
