//! Integration tests for the `rupcxx-trace` observability layer: a
//! multi-rank GUPS-style workload traced end to end, checking that the
//! event ring agrees with `CommStats`, that the Chrome-trace exporter
//! writes a structurally valid file at job teardown, and that a job with
//! tracing disabled records nothing.

use rupcxx_net::GlobalAddr;
use rupcxx_runtime::{spmd, RuntimeConfig};
use rupcxx_trace::{EventKind, TraceConfig};
use rupcxx_util::GupsRng;

/// Per-rank observation returned from inside the traced job.
struct RankObs {
    put_events: usize,
    get_events: usize,
    am_send_events: usize,
    stats_puts: u64,
    stats_gets: u64,
    stats_ams_sent: u64,
}

#[test]
fn gups_trace_events_match_comm_stats() {
    const RANKS: usize = 4;
    const UPDATES: usize = 500;
    let trace_path =
        std::env::temp_dir().join(format!("rupcxx_trace_it_{}.json", std::process::id()));
    let trace_path_str = trace_path.to_str().unwrap().to_string();

    let obs = spmd(
        RuntimeConfig::new(RANKS)
            .segment_bytes(1 << 16)
            .with_trace(TraceConfig::events().with_path(&trace_path_str)),
        |ctx| {
            let me = ctx.rank();
            ctx.barrier();
            // GUPS phase: random remote xor updates plus a verifying get,
            // always to another rank so every op counts as remote.
            let mut rng = GupsRng::new();
            for _ in 0..UPDATES {
                let peer = (me + 1 + (rng.next_u64() as usize % (RANKS - 1))) % RANKS;
                let slot = (rng.next_u64() % 64) * 8;
                ctx.fabric()
                    .xor_u64(me, GlobalAddr::new(peer, slot as usize), rng.next_u64());
            }
            for _ in 0..UPDATES / 4 {
                let peer = (me + 1) % RANKS;
                let _ = ctx.fabric().get_u64(me, GlobalAddr::new(peer, 0));
            }
            ctx.barrier();
            // Quiescent for this rank's initiator-side counters: snapshot
            // both the counters and the ring and compare.
            let ep = ctx.fabric().endpoint(me);
            let stats = ep.stats.snapshot();
            let events = ep.trace.events();
            assert_eq!(
                ep.trace.ring().unwrap().dropped(),
                0,
                "ring too small for this workload"
            );
            RankObs {
                put_events: events.iter().filter(|e| e.kind == EventKind::Put).count(),
                get_events: events.iter().filter(|e| e.kind == EventKind::Get).count(),
                am_send_events: events
                    .iter()
                    .filter(|e| e.kind == EventKind::AmSend)
                    .count(),
                stats_puts: stats.puts,
                stats_gets: stats.gets,
                stats_ams_sent: stats.ams_sent,
            }
        },
    );

    for (rank, o) in obs.iter().enumerate() {
        // The acceptance property: per-kind trace event counts equal the
        // CommStats counters for the same run.
        assert_eq!(
            o.put_events as u64, o.stats_puts,
            "rank {rank}: put events vs CommStats.puts"
        );
        assert_eq!(
            o.get_events as u64, o.stats_gets,
            "rank {rank}: get events vs CommStats.gets"
        );
        assert_eq!(
            o.am_send_events as u64, o.stats_ams_sent,
            "rank {rank}: am_send events vs CommStats.ams_sent"
        );
        // And the workload shape itself: every xor is a remote put, every
        // read a remote get.
        assert_eq!(o.stats_puts, UPDATES as u64, "rank {rank} put count");
        assert_eq!(o.stats_gets, (UPDATES / 4) as u64, "rank {rank} get count");
    }

    // Teardown must have written a structurally valid Chrome trace.
    let json = std::fs::read_to_string(&trace_path).expect("trace file written at teardown");
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"name\":\"put\""));
    assert!(json.contains("\"name\":\"barrier\""));
    assert!(json.contains("\"ph\":\"X\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    // One timeline row per rank.
    for r in 0..RANKS {
        assert!(
            json.contains(&format!("\"tid\":{r}")),
            "missing rank {r} events"
        );
    }
    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn disabled_trace_records_no_events_or_metrics() {
    let obs = spmd(
        RuntimeConfig::new(2)
            .segment_bytes(1 << 16)
            .with_trace(TraceConfig::off()),
        |ctx| {
            let me = ctx.rank();
            ctx.fabric()
                .put_u64(me, GlobalAddr::new((me + 1) % 2, 0), 7);
            ctx.barrier();
            let trace = ctx.trace();
            let m = trace.metrics.snapshot();
            (
                trace.enabled(),
                trace.events().len(),
                m.put_ns.count + m.get_ns.count + m.msg_bytes.count,
                m.advance_polls,
            )
        },
    );
    for (enabled, events, hist_count, polls) in obs {
        assert!(!enabled);
        assert_eq!(events, 0);
        assert_eq!(hist_count, 0);
        assert_eq!(polls, 0);
    }
}

#[test]
fn metrics_mode_populates_histograms_without_ring() {
    let obs = spmd(
        RuntimeConfig::new(2)
            .segment_bytes(1 << 16)
            .with_trace(TraceConfig::metrics()),
        |ctx| {
            let me = ctx.rank();
            for i in 0..32u64 {
                ctx.fabric()
                    .put_u64(me, GlobalAddr::new((me + 1) % 2, (i % 8) as usize * 8), i);
            }
            ctx.barrier();
            let trace = ctx.trace();
            let m = trace.metrics.snapshot();
            (
                trace.events().len(),
                m.put_ns.count,
                m.advance_polls,
                m.barrier_ns.count,
            )
        },
    );
    for (events, puts, polls, barriers) in obs {
        assert_eq!(events, 0, "metrics mode must not allocate a ring");
        assert_eq!(puts, 32);
        assert!(polls > 0, "advance() polls must be counted");
        assert_eq!(barriers, 1);
    }
}
