//! Property tests of the software read cache (proptest): for an
//! arbitrary schedule of remote puts, owner writes, remote atomics and
//! remote gets in which every read of data dirtied by another rank is
//! preceded by a synchronization point (the invalidation contract of
//! `barrier()`/`fence()`, modeled by `cache_invalidate_sync`), a cached
//! fabric returns bit-for-bit the same values and leaves bit-for-bit the
//! same segments as an uncached one — including with a deliberately tiny
//! cache (evictions), byte-granular gets spanning line boundaries, and
//! under drop/dup fault injection. Failing schedules are shrunk with
//! `shrink_vec` to a 1-minimal counterexample.

use rupcxx_net::{CacheConfig, Fabric, FabricConfig, FaultPlan, GlobalAddr};
use rupcxx_trace::TraceConfig;
use rupcxx_util::prop as proptest;
use rupcxx_util::prop::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// Words of segment state the schedule may touch, per rank.
const WORDS: usize = 32;

/// One schedule entry: `who` selects the acting rank, `kind` the
/// operation, `x`/`y` parameterize it.
type Op = (bool, u8, u16, u16);

fn fabric(cache: Option<CacheConfig>, faults: Option<FaultPlan>) -> Arc<Fabric> {
    Fabric::new(FabricConfig {
        ranks: 2,
        segment_bytes: WORDS * 8,
        simnet: None,
        trace: TraceConfig::off(),
        faults,
        agg: None,
        check: None,
        cache,
        prof: None,
        schedule: None,
        remote: None,
    })
}

/// A cache small enough that the schedule forces evictions (8 slots of
/// 64-byte lines over a 256-byte remote segment).
fn tiny_cache() -> CacheConfig {
    CacheConfig {
        capacity_bytes: 512,
        line_bytes: 64,
    }
}

/// Run `sched` on `f`, inserting a sync-point invalidation before any
/// read of a word some *other* rank wrote since the reader's last sync
/// (the legality discipline of a barrier-synchronized program — computed
/// from the schedule alone, so both fabrics take identical paths).
/// Returns every value read plus both segments' final word contents.
fn run(f: &Fabric, sched: &[Op]) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    let mut dirty: [HashSet<(usize, usize)>; 2] = [HashSet::new(), HashSet::new()];
    let sync = |f: &Fabric, me: usize, dirty: &mut [HashSet<(usize, usize)>; 2]| {
        f.cache_invalidate_sync(me);
        dirty[me].clear();
    };
    let mut reads = Vec::new();
    for &(who, kind, x, y) in sched {
        let me = who as usize;
        let other = 1 - me;
        let w = x as usize % WORDS;
        let value = y as u64 + 1;
        match kind % 5 {
            0 => {
                // Remote put: write-through drops the writer's own line;
                // the other rank's copy goes stale until it syncs.
                f.put_u64(me, GlobalAddr::new(other, w * 8), value);
                dirty[other].insert((other, w));
            }
            1 => {
                // Owner write to its own segment (never cached locally).
                f.put_u64(me, GlobalAddr::new(me, w * 8), value);
                dirty[other].insert((me, w));
            }
            2 => {
                // Remote atomic (write-through like a put).
                f.xor_u64(me, GlobalAddr::new(other, w * 8), value | 1);
                dirty[other].insert((other, w));
            }
            3 => {
                // Remote word get through the cache.
                if dirty[me].contains(&(other, w)) {
                    sync(f, me, &mut dirty);
                }
                reads.push(f.get_u64(me, GlobalAddr::new(other, w * 8)));
            }
            _ => {
                // Byte-granular remote get spanning word/line boundaries.
                let off = (x as usize * 3) % (WORDS * 8 - 48);
                let len = 1 + (y as usize % 48);
                let span = off / 8..=(off + len - 1) / 8;
                if span.into_iter().any(|w| dirty[me].contains(&(other, w))) {
                    sync(f, me, &mut dirty);
                }
                let mut buf = vec![0u8; len];
                f.get(me, GlobalAddr::new(other, off), &mut buf);
                reads.extend(buf.into_iter().map(u64::from));
            }
        }
    }
    let words = |rank: usize| -> Vec<u64> {
        (0..WORDS)
            .map(|w| f.get_u64(rank, GlobalAddr::new(rank, w * 8)))
            .collect()
    };
    (reads, words(0), words(1))
}

/// The property: a cached fabric is observationally identical to an
/// uncached one on any legally synchronized schedule.
fn cache_is_transparent(cache: &CacheConfig, faults: Option<&FaultPlan>, sched: &[Op]) -> bool {
    let plain = fabric(None, faults.cloned());
    let cached = fabric(Some(cache.clone()), faults.cloned());
    run(&plain, sched) == run(&cached, sched)
}

/// Check the property; on failure, shrink the schedule to a 1-minimal
/// counterexample and panic with a reproducible report.
fn check_or_shrink(cache: CacheConfig, faults: Option<FaultPlan>, sched: Vec<Op>) {
    if cache_is_transparent(&cache, faults.as_ref(), &sched) {
        return;
    }
    let original_len = sched.len();
    let minimal =
        proptest::shrink_vec(sched, |s| !cache_is_transparent(&cache, faults.as_ref(), s));
    panic!(
        "cached reads diverged under {cache:?} / {faults:?}; \
         minimal failing schedule ({} of {} ops): {minimal:?}",
        minimal.len(),
        original_len,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cached_reads_equal_uncached_tiny_cache(
        sched in proptest::collection::vec(
            (any::<bool>(), any::<u8>(), 0u16..512, 0u16..512), 1..100),
    ) {
        check_or_shrink(tiny_cache(), None, sched);
    }

    #[test]
    fn cached_reads_equal_uncached_default_cache(
        sched in proptest::collection::vec(
            (any::<bool>(), any::<u8>(), 0u16..512, 0u16..512), 1..100),
    ) {
        check_or_shrink(CacheConfig::default(), None, sched);
    }

    #[test]
    fn cached_reads_equal_uncached_under_faults(
        seed in 0u64..1_000_000,
        drop_ppm in 0u32..300_000,
        dup_ppm in 0u32..200_000,
        sched in proptest::collection::vec(
            (any::<bool>(), any::<u8>(), 0u16..512, 0u16..512), 1..60),
    ) {
        let plan = FaultPlan::new(seed)
            .drop(drop_ppm as f64 / 1e6)
            .dup(dup_ppm as f64 / 1e6);
        check_or_shrink(tiny_cache(), Some(plan), sched);
    }
}

/// Guard against a property that silently never exercises the cache: a
/// read-heavy schedule must pass while actually hitting, and the tiny
/// cache must have evicted (more misses than its slot count).
#[test]
fn caching_actually_caches_and_evicts() {
    let sched: Vec<Op> = (0..200)
        .map(|i| {
            let kind = if i % 10 == 0 { 0u8 } else { 3 + (i % 2) as u8 };
            (i % 3 == 0, kind, (i * 7) as u16, (i * 13) as u16)
        })
        .collect();
    assert!(cache_is_transparent(&tiny_cache(), None, &sched));
    let f = fabric(Some(tiny_cache()), None);
    let _ = run(&f, &sched);
    let c0 = f.endpoint(0).stats.snapshot();
    let c1 = f.endpoint(1).stats.snapshot();
    let (hits, misses) = (
        c0.cache_hits + c1.cache_hits,
        c0.cache_misses + c1.cache_misses,
    );
    assert!(hits > 0, "schedule never hit the cache");
    assert!(
        misses > 8,
        "schedule never evicted (only {misses} misses for 8 slots)"
    );
}
