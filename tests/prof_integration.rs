//! Integration tests for the causal cross-rank profiler (`rupcxx-prof`,
//! `RUPCXX_PROF`): wait-state attribution on real paper workloads, the
//! offline critical-path analysis, the postmortem flight recorder on a
//! planted dead link, per-destination exact op accounting, and the
//! zero-cost guarantee that a profiled run moves exactly the same wire
//! traffic as an unprofiled one.

use rupcxx_apps::{gups, stencil};
use rupcxx_net::{
    AggConfig, CacheConfig, CommCounts, Fabric, FabricConfig, FaultPlan, GlobalAddr, LinkRule,
    ProfConfig,
};
use rupcxx_runtime::{spmd, Ctx, RuntimeConfig};
use rupcxx_trace::{critpath, flight, RankProf, TraceConfig};
use rupcxx_util::sync::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A per-test profile output path (tests in one binary run concurrently).
fn prof_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!(
            "rupcxx_prof_it_{}_{}.json",
            tag,
            std::process::id()
        ))
        .to_str()
        .unwrap()
        .to_string()
}

/// Run an SPMD job and capture its fabric, so profiler state can be read
/// after every rank has drained to quiescence.
fn spmd_capturing<R: Send>(
    cfg: RuntimeConfig,
    body: impl Fn(&Ctx) -> R + Send + Sync,
) -> (Vec<R>, Arc<Fabric>) {
    let fabric: Mutex<Option<Arc<Fabric>>> = Mutex::new(None);
    let out = spmd(cfg, |ctx| {
        if ctx.rank() == 0 {
            *fabric.lock() = Some(ctx.shared().fabric.clone());
        }
        body(ctx)
    });
    let fabric = fabric.lock().take().expect("rank 0 captured the fabric");
    (out, fabric)
}

/// Gather every rank's profiler output, as the teardown exporter does.
fn gather(fabric: &Fabric, ranks: usize) -> Vec<RankProf> {
    (0..ranks)
        .map(|r| {
            let p = fabric.prof(r).expect("profiler enabled");
            RankProf {
                rank: r,
                events: p.ring.snapshot(),
                waits: p.waits.snapshot(),
                barrier_total_ns: p.barrier_total_ns.load(Ordering::Relaxed),
            }
        })
        .collect()
}

fn run_gups(prof: Option<ProfConfig>) -> (Vec<gups::GupsResult>, Arc<Fabric>) {
    let mut cfg = RuntimeConfig::new(4).segment_mib(4);
    if let Some(p) = prof {
        cfg = cfg.with_prof(p);
    }
    spmd_capturing(cfg, |ctx| {
        gups::run(
            ctx,
            &gups::GupsConfig {
                table_size: 1 << 10,
                updates_per_rank: 2_000,
                variant: gups::Variant::Upcxx,
                verify: true,
            },
        )
    })
}

#[test]
fn profiled_stencil_attributes_barrier_wall_time() {
    // The acceptance criterion: on a 2-rank stencil, at least 90% of
    // barrier wall time must be attributed to a named wait state. The
    // barrier instrumentation wraps the whole episode, so attribution is
    // complete by construction — this test pins that down end to end.
    let path = prof_path("stencil");
    let (results, fabric) = spmd_capturing(
        RuntimeConfig::new(2)
            .segment_mib(4)
            .with_prof(ProfConfig::on().with_path(&path)),
        |ctx| {
            stencil::run(
                ctx,
                &stencil::StencilConfig {
                    local_edge: 8,
                    grid: (2, 1, 1),
                    iters: 4,
                    variant: stencil::Variant::Generic,
                    c: 0.5,
                },
            )
        },
    );
    assert!(
        (results[0].checksum - results[1].checksum).abs() < 1e-9,
        "profiling must not perturb the computation"
    );

    let report = critpath::analyze(&gather(&fabric, 2));
    assert!(report.intervals >= 1, "stencil barriers delimit intervals");
    assert_eq!(report.critical_ranks.len(), report.intervals);
    assert!(
        report.attributed_fraction() >= 0.9,
        "only {:.1}% of barrier wall time attributed",
        report.attributed_fraction() * 100.0
    );
    // Every rank blocked at least once (ghost exchange + barriers), so
    // the per-construct histograms are non-empty on both ranks.
    for r in &report.ranks {
        assert!(
            r.state_ns.iter().sum::<u64>() > 0,
            "rank {} recorded no attributed waits",
            r.rank
        );
    }
    let json = report.to_json();
    assert!(json.contains("\"barrier_attribution\""));
    assert!(json.contains("\"late_sender\""));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn profiled_gups_yields_nonempty_critical_path_and_writes_json() {
    let path = prof_path("gups");
    let (results, fabric) = run_gups(Some(ProfConfig::on().with_path(&path)));
    assert!(results.iter().all(|r| r.verified));

    let report = critpath::analyze(&gather(&fabric, 4));
    assert!(report.intervals >= 1, "GUPS phases are barrier-delimited");
    assert!(
        report.critical_path_ns > 0,
        "the update phase is real work, so the critical path is non-empty"
    );
    assert_eq!(report.ranks.len(), 4);

    // The teardown exporter wrote the machine-readable report.
    let on_disk = std::fs::read_to_string(&path).expect("profile JSON written at teardown");
    assert!(on_disk.contains("\"critical_path_ns\""));
    assert!(on_disk.contains("\"ranks\""));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn dead_link_dumps_flight_recorder_with_final_retransmits() {
    // A 0->1 link that drops every attempt: the barrier can never
    // complete, retransmission gives up after 4 attempts, and the
    // `PeerUnreachable` panic must be preceded by a flight-recorder dump
    // whose tail shows the doomed frame's retransmit attempts.
    let _ = flight::take_dumps();
    let path = prof_path("flight");
    let dead = LinkRule {
        drop_ppm: 1_000_000,
        ..Default::default()
    };
    let plan = FaultPlan::new(43).link(0, 1, dead).max_attempts(4);
    let cfg = RuntimeConfig::new(2)
        .segment_bytes(4096)
        .with_faults(plan)
        .with_prof(ProfConfig::on().with_path(&path));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        spmd(cfg, |ctx| ctx.barrier());
    }));
    assert!(outcome.is_err(), "the dead link must surface as a panic");

    let dumps = flight::take_dumps();
    assert!(!dumps.is_empty(), "no flight-recorder dump was captured");
    let text = dumps.join("\n");
    assert!(
        text.contains("flight recorder"),
        "dump header missing:\n{text}"
    );
    assert!(
        text.contains("retransmit"),
        "dump must show the final retransmits:\n{text}"
    );
    assert!(
        text.contains("attempt="),
        "retransmit lines carry attempt numbers:\n{text}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn profiler_off_and_on_move_identical_wire_traffic() {
    // Zero-cost contract, observable half: enabling the profiler changes
    // no communication — same results, same frame counts, bit for bit.
    let path = prof_path("invariance");
    let (off, off_fabric) = run_gups(None);
    let (on, on_fabric) = run_gups(Some(ProfConfig::on().with_path(&path)));
    for (a, b) in off.iter().zip(on.iter()) {
        assert_eq!(a.checksum, b.checksum, "profiling perturbed the result");
        assert!(a.verified && b.verified);
    }
    let c_off: CommCounts = off_fabric.total_counts();
    let c_on: CommCounts = on_fabric.total_counts();
    assert_eq!(
        c_off, c_on,
        "profiler on/off must move identical wire traffic"
    );
    assert!(
        off_fabric.prof(0).is_none(),
        "profiler off allocates nothing"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn per_dest_counters_account_every_initiated_op_exactly() {
    // Satellite: with the profiler on, every initiated remote operation
    // lands in exactly one per-destination bucket — Σ_dest ops equals
    // puts + gets + AMs sent, per endpoint, with nothing dropped or
    // double-counted. The workload uses raw segment addresses (no
    // alloc_on/free, whose modeled AM round trips are counted without a
    // wire message and would break exactness on purpose).
    const RANKS: usize = 4;
    const OPS: usize = 16;
    let path = prof_path("perdest");
    let (_, fabric) = spmd_capturing(
        RuntimeConfig::new(RANKS)
            .segment_bytes(1 << 16)
            .with_prof(ProfConfig::on().with_path(&path)),
        |ctx| {
            let me = ctx.rank();
            ctx.barrier();
            for peer in (0..RANKS).filter(|&p| p != me) {
                for k in 0..OPS {
                    let w = GlobalAddr::new(peer, (me * 2 * OPS + k) * 8);
                    ctx.fabric().put_u64(me, w, (me * 1000 + k) as u64);
                    let r = GlobalAddr::new(peer, (me * 2 * OPS + OPS + k) * 8);
                    let _ = ctx.fabric().get_u64(me, r);
                }
                ctx.send_task(peer, || {});
            }
            ctx.barrier();
        },
    );
    for r in 0..RANKS {
        let s = fabric.endpoint(r).stats.snapshot();
        let pd = fabric
            .endpoint(r)
            .stats
            .per_dest()
            .expect("profiler enables per-destination accounting");
        assert_eq!(pd.len(), RANKS);
        let (ops, bytes) = pd
            .iter()
            .fold((0u64, 0u64), |(o, b), &(po, pb)| (o + po, b + pb));
        assert_eq!(
            ops,
            s.puts + s.gets + s.ams_sent,
            "rank {r}: per-dest ops must account every initiated op exactly"
        );
        // This workload's AMs are all opaque task messages (explicit
        // spawns + barrier signals), modeled at 64 header bytes each, so
        // the byte ledger is exact too.
        assert_eq!(s.am_bytes, 0, "rank {r}: no payload-carrying AMs here");
        assert_eq!(
            bytes,
            s.put_bytes + s.get_bytes + 64 * s.ams_sent,
            "rank {r}: per-dest bytes must match the initiated volume"
        );
        assert_eq!(pd[r], (0, 0), "rank {r}: self-traffic is never remote");
        for peer in (0..RANKS).filter(|&p| p != r) {
            assert!(
                pd[peer].0 >= (2 * OPS + 1) as u64,
                "rank {r}: destination {peer} missed ops: {pd:?}"
            );
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn delta_since_spans_cache_and_agg_counters_and_rejects_stale_baselines() {
    // Satellite: phase measurement via `delta_since` over a fabric with
    // the cache, aggregation and profiler layers all enabled — the delta
    // isolates exactly the second phase's traffic, a reset bumps the
    // epoch and invalidates old baselines, and a fresh baseline in the
    // new epoch measures normally (per-dest counters included).
    const WORDS: usize = 1024;
    let f = Fabric::new(FabricConfig {
        ranks: 2,
        segment_bytes: WORDS * 8,
        simnet: None,
        trace: TraceConfig::off(),
        faults: None,
        agg: Some(AggConfig::new()),
        check: None,
        cache: Some(CacheConfig::default()),
        prof: Some(ProfConfig::on()),
        schedule: None,
        remote: None,
    });
    let hot = GlobalAddr::new(1, 0); // cached read target
    let cold = GlobalAddr::new(1, (WORDS - 1) * 8); // uncached write target

    // Phase 1: fill the line, warm the counters.
    for _ in 0..8 {
        let _ = f.get_u64(0, hot);
    }
    let stats = &f.endpoint(0).stats;
    let base = stats.snapshot();
    assert_eq!(base.epoch, 0);

    // Phase 2: cache hits only, plus buffered ops coalesced to one frame.
    for _ in 0..8 {
        let _ = f.get_u64(0, hot);
    }
    for k in 0..4 {
        f.xor_u64_buffered(0, GlobalAddr::new(1, (512 + k) * 8), 0xfeed);
    }
    f.flush_agg(0);
    let d = stats.delta_since(&base);
    assert_eq!(d.cache_hits, 8, "phase 2 is all hits");
    assert_eq!(d.gets, 0, "no fabric get crossed the wire in phase 2");
    assert_eq!(d.agg_ops, 4);
    assert_eq!(d.agg_batches, 1, "four buffered ops became one frame");
    assert_eq!(d.ams_sent, 1, "the batch is one wire message");

    // Reset: the epoch advances, per-dest buckets clear, and the old
    // baseline is rejected rather than silently underflowing.
    f.reset_counts();
    assert_eq!(stats.epoch(), 1);
    let stale = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = stats.delta_since(&base);
    }));
    assert!(
        stale.is_err(),
        "stale baseline must be rejected after reset"
    );
    assert_eq!(stats.per_dest().unwrap(), vec![(0, 0); 2]);

    // A fresh baseline in the new epoch measures the new phase normally.
    let base2 = stats.snapshot();
    assert_eq!(base2.epoch, 1);
    for _ in 0..3 {
        let _ = f.get_u64(0, hot); // still cached: hits, no fabric ops
    }
    f.put_u64(0, cold, 7);
    let d2 = stats.delta_since(&base2);
    assert_eq!(d2.cache_hits, 3);
    assert_eq!(d2.puts, 1);
    assert_eq!(d2.gets, 0);
    assert_eq!(
        stats.per_dest().unwrap()[1],
        (1, 8),
        "post-reset per-dest sees only the new epoch's remote put"
    );
}
