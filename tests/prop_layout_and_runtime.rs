//! Property-based tests of the block-cyclic layout, Pod packing, the
//! segment byte machinery and the collectives.

use rupcxx::prelude::*;
use rupcxx_net::{pod, Segment};
use rupcxx_util::prop as proptest;
use rupcxx_util::prop::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Block-cyclic layout: `my_indices` of all ranks partition `0..size`,
    /// each index owned by the rank the layout formula names.
    #[test]
    fn block_cyclic_partition(
        ranks in 1usize..6,
        block in 1usize..5,
        size in 0usize..60,
    ) {
        let out = spmd(
            RuntimeConfig::new(ranks).segment_bytes(1 << 16),
            move |ctx| {
                let a = SharedArray::<u64>::new(ctx, size, block);
                let mine: Vec<usize> = a.my_indices(ctx).collect();
                for &i in &mine {
                    assert_eq!(a.owner(i), ctx.rank());
                }
                ctx.barrier();
                a.destroy(ctx);
                mine
            },
        );
        let mut all: Vec<usize> = out.into_iter().flatten().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..size).collect::<Vec<_>>());
    }

    /// Round trip arbitrary values through the shared array.
    #[test]
    fn shared_array_roundtrip(values in proptest::collection::vec(any::<u64>(), 1..40), block in 1usize..4) {
        let n = values.len();
        let v2 = values.clone();
        let out = spmd(RuntimeConfig::new(3).segment_bytes(1 << 16), move |ctx| {
            let a = SharedArray::<u64>::new(ctx, n, block);
            if ctx.rank() == 0 {
                for (i, &v) in v2.iter().enumerate() {
                    a.write(ctx, i, v);
                }
            }
            ctx.barrier();
            let got: Vec<u64> = (0..n).map(|i| a.read(ctx, i)).collect();
            ctx.barrier();
            a.destroy(ctx);
            got
        });
        for got in out {
            prop_assert_eq!(&got, &values);
        }
    }

    /// Segment byte reads/writes round-trip at any offset/length.
    #[test]
    fn segment_byte_roundtrip(offset in 0usize..64, data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let seg = Segment::new(256);
        seg.write_bytes(offset, &data);
        let mut out = vec![0u8; data.len()];
        seg.read_bytes(offset, &mut out);
        prop_assert_eq!(out, data);
    }

    /// Pod pack/unpack is the identity on slices.
    #[test]
    fn pod_pack_unpack_identity(values in proptest::collection::vec(any::<f64>(), 0..64)) {
        let bytes = pod::pack_slice(&values);
        let back = pod::unpack_slice::<f64>(&bytes);
        prop_assert_eq!(back.len(), values.len());
        for (a, b) in back.iter().zip(&values) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Allreduce computes the same fold on every rank, for arbitrary
    /// per-rank contributions.
    #[test]
    fn allreduce_equals_reference(contribs in proptest::collection::vec(any::<i64>(), 1..6)) {
        let n = contribs.len();
        let c2 = contribs.clone();
        let out = spmd(RuntimeConfig::new(n).segment_bytes(1 << 14), move |ctx| {
            ctx.allreduce(c2[ctx.rank()], i64::wrapping_add)
        });
        let expect = contribs.iter().fold(0i64, |a, &b| a.wrapping_add(b));
        prop_assert!(out.iter().all(|&v| v == expect));
    }

    /// Exchange is a permutation routing: payload (src,dst) arrives at
    /// output slot (dst,src) exactly.
    #[test]
    fn exchange_routes_exactly(n in 1usize..6, salt in any::<u8>()) {
        let out = spmd(RuntimeConfig::new(n).segment_bytes(1 << 14), move |ctx| {
            let me = ctx.rank() as u8;
            let input: Vec<Vec<u8>> =
                (0..n).map(|d| vec![salt, me, d as u8]).collect();
            ctx.exchange(input)
        });
        for (me, received) in out.iter().enumerate() {
            for (src, payload) in received.iter().enumerate() {
                let expect = [salt, src as u8, me as u8];
                prop_assert_eq!(payload.as_slice(), expect.as_slice());
            }
        }
    }

    /// Broadcast delivers the root's value regardless of root and size.
    #[test]
    fn broadcast_from_any_root(n in 1usize..7, root_sel in any::<u16>(), value in any::<u64>()) {
        let root = root_sel as usize % n;
        let out = spmd(RuntimeConfig::new(n).segment_bytes(1 << 14), move |ctx| {
            let mine = if ctx.rank() == root { value } else { 0 };
            ctx.broadcast(root, mine)
        });
        prop_assert!(out.iter().all(|&v| v == value));
    }

    /// GlobalPtr arithmetic is linear in element counts.
    #[test]
    fn global_ptr_arithmetic_linear(base in 0usize..1000, a in 0usize..50, b in 0usize..50) {
        let p: GlobalPtr<u32> = GlobalPtr::from_addr(GlobalAddr::new(1, base * 8));
        prop_assert_eq!(p.offset(a).offset(b), p.offset(a + b));
        prop_assert_eq!(p.offset(a).addr().offset(), base * 8 + 4 * a);
    }
}
