//! `RUPCXX_SCHEDULE` environment plumbing: a committed minimized
//! schedule replays as an ordinary checked `cargo test`, with no
//! exploration machinery involved. One test only — environment variables
//! are process-global, and this binary is the process that owns them.

use rupcxx_check::{new_sink, CheckConfig, FindingKind};
use rupcxx_explore::corpus::find;
use rupcxx_runtime::{spmd, RuntimeConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn env_schedule_replays_committed_regression() {
    // File form: point RUPCXX_SCHEDULE at the committed minimized
    // schedule for the schedule-dependent showcase bug and run the
    // program exactly as any checked test would. The replayed delivery
    // order strands rank 0 on the never-signaled event; the checker
    // aborts the job and reports it.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/schedules/order_sensitive_event.sched"
    );
    std::env::set_var("RUPCXX_SCHEDULE", path);
    let e = find("order_sensitive_event");
    let sink = new_sink();
    let mut rt = RuntimeConfig::new(e.ranks)
        .segment_bytes(1 << 16)
        .with_check(CheckConfig::all().with_sink(sink.clone()));
    assert!(rt.schedule.is_some(), "RUPCXX_SCHEDULE seeds the config");
    rt.faults = None; // faults and controlled scheduling are exclusive
    let program = (e.make)();
    let err = catch_unwind(AssertUnwindSafe(|| {
        spmd(rt, |ctx| {
            program(ctx);
        })
    }));
    assert!(err.is_err(), "the replayed schedule must abort the job");
    assert!(
        sink.lock()
            .iter()
            .any(|f| f.kind == FindingKind::EventNeverSignaled),
        "expected the replayed event-never-signaled finding, got: {:?}",
        sink.lock()
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
    );

    // Inline form: picks parse straight out of the variable.
    std::env::set_var("RUPCXX_SCHEDULE", "inline:# rupcxx schedule v1;0->1;1->0");
    let rt = RuntimeConfig::new(2);
    let picks = &rt
        .schedule
        .as_ref()
        .expect("inline schedule")
        .schedule
        .picks;
    assert_eq!(picks, &[(0, 1), (1, 0)]);

    // Explicit off.
    std::env::set_var("RUPCXX_SCHEDULE", "off");
    assert!(RuntimeConfig::new(2).schedule.is_none());
    std::env::remove_var("RUPCXX_SCHEDULE");
}
