//! Chaos integration: paper benchmarks under deterministic fault
//! injection. A seeded `FaultPlan` drops, duplicates, reorders and
//! delays wire traffic while GUPS and sample sort run; the reliable
//! delivery layer must make the results bit-for-bit identical to a
//! fault-free run, and the fault counters must be reproducible for the
//! same seed.
//!
//! The seed comes from `RUPCXX_CHAOS_SEED` (the `make chaos` target
//! loops over several pinned seeds); unset, a fixed default applies.

use rupcxx_apps::{gups, sample_sort};
use rupcxx_net::{CommCounts, Fabric, FaultPlan};
use rupcxx_runtime::{spmd, Ctx, RuntimeConfig};
use rupcxx_util::sync::Mutex;
use std::sync::Arc;

fn chaos_seed() -> u64 {
    std::env::var("RUPCXX_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(101)
}

/// The standard chaos mix: 10% drop, 5% dup, 10% reorder, 5% delay on
/// every link.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .drop(0.10)
        .dup(0.05)
        .reorder(0.10)
        .delay(0.05)
}

/// Run an SPMD job and capture its fabric, so the job-wide fault
/// counters can be read after every rank has drained to quiescence.
fn spmd_capturing<R: Send>(
    cfg: RuntimeConfig,
    body: impl Fn(&Ctx) -> R + Send + Sync,
) -> (Vec<R>, CommCounts) {
    let fabric: Mutex<Option<Arc<Fabric>>> = Mutex::new(None);
    let out = spmd(cfg, |ctx| {
        if ctx.rank() == 0 {
            *fabric.lock() = Some(ctx.shared().fabric.clone());
        }
        body(ctx)
    });
    let fabric = fabric.lock().take().expect("rank 0 captured the fabric");
    (out, fabric.total_counts())
}

fn run_gups(faults: Option<FaultPlan>) -> (Vec<gups::GupsResult>, CommCounts) {
    let mut cfg = RuntimeConfig::new(4).segment_mib(4);
    if let Some(plan) = faults {
        cfg = cfg.with_faults(plan);
    }
    spmd_capturing(cfg, |ctx| {
        gups::run(
            ctx,
            &gups::GupsConfig {
                table_size: 1 << 10,
                updates_per_rank: 2_000,
                variant: gups::Variant::Upcxx,
                verify: true,
            },
        )
    })
}

fn run_sort(faults: Option<FaultPlan>) -> (Vec<sample_sort::SortResult>, CommCounts) {
    let mut cfg = RuntimeConfig::new(6).segment_mib(4);
    if let Some(plan) = faults {
        cfg = cfg.with_faults(plan);
    }
    spmd_capturing(cfg, |ctx| {
        sample_sort::run(
            ctx,
            &sample_sort::SortConfig {
                keys_per_rank: 2_000,
                oversample: 32,
                variant: sample_sort::Variant::Upcxx,
                seed: 7,
            },
        )
    })
}

#[test]
fn gups_under_chaos_matches_fault_free_run() {
    let seed = chaos_seed();
    let (clean, clean_counts) = run_gups(None);
    let (chaos, chaos_counts) = run_gups(Some(chaos_plan(seed)));

    assert!(clean.iter().all(|r| r.verified));
    assert_eq!(clean_counts.retransmits, 0, "fault-free run never retries");
    assert_eq!(clean_counts.wire_drops, 0);
    assert_eq!(clean_counts.dup_arrivals, 0);

    assert!(
        chaos.iter().all(|r| r.verified),
        "GUPS must verify under chaos (seed {seed})"
    );
    for (c, f) in clean.iter().zip(&chaos) {
        assert_eq!(c.updates, f.updates, "same work under faults (seed {seed})");
    }
    assert!(
        chaos_counts.retransmits > 0,
        "a 10% drop plan must force retransmissions (seed {seed})"
    );
    assert_eq!(
        chaos_counts.retransmits, chaos_counts.wire_drops,
        "at quiescence every dropped frame was retried exactly once (seed {seed})"
    );
}

#[test]
fn sample_sort_under_chaos_matches_fault_free_run() {
    let seed = chaos_seed();
    let (clean, clean_counts) = run_sort(None);
    let (chaos, chaos_counts) = run_sort(Some(chaos_plan(seed)));

    assert!(clean.iter().all(|r| r.verified));
    assert_eq!(clean_counts.wire_drops, 0);

    assert!(
        chaos.iter().all(|r| r.verified),
        "sort must verify under chaos (seed {seed})"
    );
    // Bit-for-bit agreement with the clean run: same global checksum and
    // the same key count landing on every rank.
    for (c, f) in clean.iter().zip(&chaos) {
        assert_eq!(c.checksum, f.checksum, "seed {seed}");
        assert_eq!(c.my_keys, f.my_keys, "seed {seed}");
    }
    assert!(
        chaos_counts.retransmits > 0,
        "a 10% drop plan must force retransmissions (seed {seed})"
    );
    assert_eq!(
        chaos_counts.retransmits, chaos_counts.wire_drops,
        "seed {seed}"
    );
}

#[test]
fn fault_counts_reproduce_for_the_same_seed() {
    // Determinism of the *counts*, not just the results: the fate of
    // every transmission is a pure function of (seed, link, seq,
    // attempt), so two identical jobs see identical drop/retry/dup
    // totals. (`reorders` is deliberately excluded — whether a held
    // frame is actually overtaken depends on pump timing.)
    let seed = chaos_seed();
    let fingerprint = || {
        let (out, counts) = run_gups(Some(chaos_plan(seed)));
        assert!(out.iter().all(|r| r.verified));
        (counts.wire_drops, counts.retransmits, counts.dup_arrivals)
    };
    assert_eq!(
        fingerprint(),
        fingerprint(),
        "same seed ({seed}), same fault counts"
    );
}

#[test]
fn different_seeds_give_different_schedules() {
    let (_, a) = run_gups(Some(chaos_plan(1)));
    let (_, b) = run_gups(Some(chaos_plan(2)));
    assert_ne!(
        (a.wire_drops, a.dup_arrivals),
        (b.wire_drops, b.dup_arrivals),
        "distinct seeds must draw distinct fault schedules"
    );
}
