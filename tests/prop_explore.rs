//! The schedule-independence oracle (property test): for a correctly
//! synchronized program, *every* schedule the explorer can produce —
//! canonical, every adjacent reordering of the canonical record, and a
//! batch of seeded-random ones — must yield per-rank results bit-for-bit
//! identical to the canonical run whenever the checker reports no
//! finding. A violating schedule is ddmin-shrunk to a minimal pick list
//! before the test fails, so the failure message is directly actionable.

use rupcxx_explore::{run_schedule, ExploreConfig, Program};
use rupcxx_net::{GlobalAddr, Schedule};
use rupcxx_util::prop::{seed_from_name, shrink_vec};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A clean ring program mixing every traffic class the scheduler touches:
/// two tasks to the right neighbor (summed commutatively), a put into the
/// right neighbor's segment, a barrier, then a read of what the left
/// neighbor deposited. The per-rank result is schedule-independent by
/// construction.
fn ring_program() -> Program {
    let sums = Arc::new([AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)]);
    let arrivals = Arc::new([AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)]);
    Box::new(move |ctx| {
        let me = ctx.rank();
        let n = ctx.ranks();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        ctx.fabric().put_u64(
            me,
            GlobalAddr::new(right, 64 + 8 * me),
            (me as u64 + 1) * 100,
        );
        for k in 0..2u64 {
            let sums = sums.clone();
            let arrivals = arrivals.clone();
            ctx.send_task(right, move || {
                sums[right].fetch_add(me as u64 * 10 + k, Ordering::AcqRel);
                arrivals[right].fetch_add(1, Ordering::AcqRel);
            });
        }
        ctx.wait_until(|| arrivals[me].load(Ordering::Acquire) == 2);
        ctx.barrier();
        let deposited = ctx.fabric().get_u64(me, GlobalAddr::new(me, 64 + 8 * left));
        deposited * 1000 + sums[me].load(Ordering::Acquire)
    })
}

#[test]
fn prop_explored_schedules_preserve_results() {
    let cfg = ExploreConfig::new(3);
    let base = run_schedule(&cfg, Schedule::canonical(), &ring_program);
    assert!(
        base.verdict.is_empty(),
        "the ring program must be clean, got {:?}",
        base.verdict
    );
    let expected = base.results.clone().expect("clean run completes");
    let picks = base.picks();
    assert!(!picks.is_empty(), "the program must exercise the scheduler");

    // Every adjacent transposition of the canonical record, dependent or
    // not, plus seeded-random schedules — a strictly larger set than the
    // pruned search explores.
    let mut schedules = Vec::new();
    for i in 0..picks.len() - 1 {
        let mut p = picks.clone();
        p.swap(i, i + 1);
        schedules.push(Schedule::with_picks(p));
    }
    let seed0 = seed_from_name("prop_explore::ring");
    for k in 0..12 {
        schedules.push(Schedule::random(seed0.wrapping_add(k)));
    }

    for schedule in schedules {
        let out = run_schedule(&cfg, schedule, &ring_program);
        assert!(
            out.verdict.is_empty(),
            "a clean program produced findings under reordering: {:?}",
            out.verdict
        );
        if out.results.as_ref() != Some(&expected) {
            // Shrink the violating delivery order to a minimal pick list
            // that still changes the observable results.
            let minimal = shrink_vec(out.picks(), |cand| {
                let probe = run_schedule(&cfg, Schedule::with_picks(cand.to_vec()), &ring_program);
                probe.verdict.is_empty() && probe.results.as_ref() != Some(&expected)
            });
            panic!(
                "schedule changed observable results: {:?} != {expected:?}; \
                 minimal violating schedule: {minimal:?}",
                out.results
            );
        }
    }
}
