//! End-to-end integration of the five paper benchmarks at host scale,
//! including cross-variant agreement (the properties the paper's
//! comparisons rely on).

use rupcxx::prelude::*;
use rupcxx_apps::{gups, lulesh, ray, sample_sort, stencil};

fn cfg(n: usize) -> RuntimeConfig {
    RuntimeConfig::new(n).segment_mib(16)
}

#[test]
fn gups_both_variants_verify_and_count_updates() {
    for variant in [gups::Variant::Upcxx, gups::Variant::UpcDirect] {
        let out = spmd(cfg(4), move |ctx| {
            gups::run(
                ctx,
                &gups::GupsConfig {
                    table_size: 1 << 12,
                    updates_per_rank: 5_000,
                    variant,
                    verify: true,
                },
            )
        });
        assert!(out.iter().all(|r| r.verified), "{variant:?}");
    }
}

#[test]
fn stencil_2x2x2_both_variants_match_reference() {
    let reference = stencil::serial_reference((8, 8, 8), 2, 0.1);
    for variant in [stencil::Variant::Generic, stencil::Variant::Optimized] {
        let out = spmd(cfg(8), move |ctx| {
            stencil::run(
                ctx,
                &stencil::StencilConfig {
                    local_edge: 4,
                    grid: (2, 2, 2),
                    iters: 2,
                    variant,
                    c: 0.1,
                },
            )
        });
        let got = out[0].checksum;
        assert!(
            (got - reference).abs() < 1e-9 * reference.abs().max(1.0),
            "{variant:?}: {got} vs {reference}"
        );
    }
}

#[test]
fn sample_sort_scales_of_ranks_and_seeds() {
    for ranks in [2usize, 4] {
        for seed in [1u64, 99] {
            let out = spmd(cfg(ranks), move |ctx| {
                sample_sort::run(
                    ctx,
                    &sample_sort::SortConfig {
                        keys_per_rank: 4_000,
                        oversample: 32,
                        variant: sample_sort::Variant::Upcxx,
                        seed,
                    },
                )
            });
            assert!(out.iter().all(|r| r.verified), "ranks={ranks} seed={seed}");
        }
    }
}

#[test]
fn ray_image_decomposition_invariance_and_ppm_range() {
    let cfg_ray = ray::RayConfig {
        width: 32,
        height: 24,
        spp: 2,
        tile: 8,
        threads_per_rank: 2,
        nspheres: 5,
        seed: 77,
    };
    let c = cfg_ray.clone();
    let a = spmd(cfg(1), move |ctx| ray::run(ctx, &c))[0].clone();
    let c = cfg_ray.clone();
    let b = spmd(cfg(4), move |ctx| ray::run(ctx, &c))[0].clone();
    assert_eq!(a.checksum, b.checksum);
    let img = a.image.expect("root image");
    assert!(img.iter().all(|&v| v.is_finite() && v >= 0.0));
    assert!(img.iter().any(|&v| v > 0.05), "image has content");
}

#[test]
fn lulesh_transports_agree_at_8_ranks() {
    let one = spmd(cfg(8), |ctx| {
        lulesh::run(
            ctx,
            &lulesh::LuleshConfig {
                edge: 4,
                q: 2,
                steps: 3,
                transport: lulesh::Transport::OneSided,
            },
            None,
        )
    });
    let world = rupcxx_mpi::MpiWorld::new(8);
    let two = spmd(cfg(8), move |ctx| {
        lulesh::run(
            ctx,
            &lulesh::LuleshConfig {
                edge: 4,
                q: 2,
                steps: 3,
                transport: lulesh::Transport::TwoSided,
            },
            Some(&world),
        )
    });
    assert_eq!(one[0].total_energy, two[0].total_energy);
    assert_eq!(one[0].max_speed, two[0].max_speed);
    assert!(one[0].fom_zps > 0.0 && two[0].fom_zps > 0.0);
}

#[test]
fn lulesh_rendezvous_eager_thresholds_agree() {
    // Two-sided physics must not depend on the eager/rendezvous switch.
    let run_with = |eager_limit: usize| {
        let world = rupcxx_mpi::MpiWorld::with_eager_limit(8, eager_limit);
        spmd(cfg(8), move |ctx| {
            lulesh::run(
                ctx,
                &lulesh::LuleshConfig {
                    edge: 4,
                    q: 2,
                    steps: 3,
                    transport: lulesh::Transport::TwoSided,
                },
                Some(&world),
            )
        })[0]
            .total_energy
    };
    assert_eq!(run_with(usize::MAX), run_with(0));
}
