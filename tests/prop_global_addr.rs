//! Property tests of the packed `GlobalAddr` bitfield (proptest): the
//! 64-bit `rank:offset` packing must be a lossless round-trip over the
//! whole representable domain (including the max-rank/max-offset edges),
//! its derived `Ord` must coincide with the pre-packing struct's
//! rank-then-offset lexicographic order, its `Hash` must be a pure
//! function of `(rank, offset)`, and `packed()`/`from_packed()` must be
//! mutually inverse — the wire codec and cache keys depend on all four.
//! A failing ordering schedule is shrunk with `shrink_vec` to a 1-minimal
//! counterexample.

use rupcxx_net::GlobalAddr;
use rupcxx_util::prop as proptest;
use rupcxx_util::prop::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Strategy domain: the full representable space, with the edges
/// (rank 0, max rank, offset 0, max offset) drawn often enough that every
/// run exercises them.
fn edge_biased_rank() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        Just(GlobalAddr::MAX_RANKS - 1),
        0usize..GlobalAddr::MAX_RANKS,
    ]
}

fn edge_biased_offset() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        Just(GlobalAddr::MAX_OFFSET),
        Just(GlobalAddr::MAX_OFFSET - 7),
        0usize..GlobalAddr::MAX_OFFSET,
    ]
}

fn hash_of<T: Hash>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// The ordering the packing must reproduce: the old two-field struct's
/// derived lexicographic `(rank, offset)` order.
fn old_order(a: (usize, usize), b: (usize, usize)) -> std::cmp::Ordering {
    a.cmp(&b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn round_trip_is_lossless(
        rank in edge_biased_rank(),
        offset in edge_biased_offset(),
    ) {
        let a = GlobalAddr::new(rank, offset);
        prop_assert_eq!(a.rank(), rank);
        prop_assert_eq!(a.offset(), offset);
        // Reconstructing from the extracted fields is the identity.
        prop_assert_eq!(GlobalAddr::new(a.rank(), a.offset()), a);
    }

    #[test]
    fn packed_word_round_trips(
        rank in edge_biased_rank(),
        offset in edge_biased_offset(),
    ) {
        let a = GlobalAddr::new(rank, offset);
        let w = a.packed();
        prop_assert_eq!(GlobalAddr::from_packed(w), a);
        prop_assert_eq!(GlobalAddr::from_packed(w).packed(), w);
        // The packed word is itself the rank:offset bitfield.
        prop_assert_eq!(w >> GlobalAddr::OFFSET_BITS, rank as u64);
        prop_assert_eq!(w & GlobalAddr::MAX_OFFSET as u64, offset as u64);
    }

    #[test]
    fn ord_matches_rank_then_offset(
        ra in edge_biased_rank(), oa in edge_biased_offset(),
        rb in edge_biased_rank(), ob in edge_biased_offset(),
    ) {
        let a = GlobalAddr::new(ra, oa);
        let b = GlobalAddr::new(rb, ob);
        prop_assert_eq!(
            a.cmp(&b),
            old_order((ra, oa), (rb, ob)),
            "packed order diverged for ({ra},{oa}) vs ({rb},{ob})"
        );
        prop_assert_eq!(a == b, (ra, oa) == (rb, ob));
    }

    #[test]
    fn hash_is_stable_and_field_determined(
        rank in edge_biased_rank(),
        offset in edge_biased_offset(),
    ) {
        let a = GlobalAddr::new(rank, offset);
        let b = GlobalAddr::new(rank, offset);
        // Same fields → same hash (two independently constructed values),
        // and hashing is repeatable within a process.
        prop_assert_eq!(hash_of(&a), hash_of(&b));
        prop_assert_eq!(hash_of(&a), hash_of(&a));
        prop_assert_eq!(hash_of(&a), hash_of(&GlobalAddr::from_packed(a.packed())));
    }

    #[test]
    fn add_is_offset_arithmetic_within_the_field(
        rank in edge_biased_rank(),
        offset in 0usize..(1 << 32),
        bytes in 0usize..(1 << 32),
    ) {
        let a = GlobalAddr::new(rank, offset).add(bytes);
        prop_assert_eq!(a.rank(), rank, "add leaked into the rank bits");
        prop_assert_eq!(a.offset(), offset + bytes);
    }
}

/// Sorting packed addresses must equal sorting `(rank, offset)` pairs —
/// checked over whole generated sequences, with a `shrink_vec` pass that
/// reduces any failure to a 1-minimal list of pairs.
#[test]
fn sort_order_matches_old_struct_sort() {
    let mut rng = rupcxx_util::rng::SplitMix64::new(proptest::seed_from_name(
        "sort_order_matches_old_struct_sort",
    ));
    let strat = proptest::collection::vec((edge_biased_rank(), edge_biased_offset()), 0..64);
    let diverges = |pairs: &[(usize, usize)]| {
        let mut by_pair = pairs.to_vec();
        by_pair.sort();
        let mut by_addr: Vec<GlobalAddr> =
            pairs.iter().map(|&(r, o)| GlobalAddr::new(r, o)).collect();
        by_addr.sort();
        by_addr
            .iter()
            .zip(by_pair.iter())
            .any(|(a, &(r, o))| a.rank() != r || a.offset() != o)
    };
    for _ in 0..64 {
        let pairs = strat.generate(&mut rng);
        if diverges(&pairs) {
            let minimal = proptest::shrink_vec(pairs, |p| diverges(p));
            panic!("packed sort diverged; minimal failing pairs: {minimal:?}");
        }
    }
}

/// The documented capacity limits hold exactly at the edges: the largest
/// representable address survives the round trip and one more byte of
/// `add` in debug builds would assert (checked only for the in-range
/// side here — the assert itself is covered by debug_assertions tests).
#[test]
fn extreme_corners_round_trip() {
    let corners = [
        (0, 0),
        (0, GlobalAddr::MAX_OFFSET),
        (GlobalAddr::MAX_RANKS - 1, 0),
        (GlobalAddr::MAX_RANKS - 1, GlobalAddr::MAX_OFFSET),
    ];
    for (r, o) in corners {
        let a = GlobalAddr::new(r, o);
        assert_eq!((a.rank(), a.offset()), (r, o));
        assert_eq!(GlobalAddr::from_packed(a.packed()), a);
    }
    // The all-ones word is the maximal address.
    assert_eq!(
        GlobalAddr::new(GlobalAddr::MAX_RANKS - 1, GlobalAddr::MAX_OFFSET).packed(),
        u64::MAX
    );
}

/// Constructing an out-of-range rank or offset must be caught in debug
/// builds (release packing is a plain shift-or, documented as such).
#[test]
#[should_panic(expected = "rank field")]
#[cfg(debug_assertions)]
fn overflowing_rank_asserts() {
    let _ = GlobalAddr::new(GlobalAddr::MAX_RANKS, 0);
}

#[test]
#[should_panic(expected = "offset field")]
#[cfg(debug_assertions)]
fn overflowing_add_asserts() {
    let _ = GlobalAddr::new(0, GlobalAddr::MAX_OFFSET).add(1);
}
