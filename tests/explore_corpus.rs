//! Exploration over the planted-bug corpus: every PR-4 pattern (and the
//! schedule-dependent showcase) must be found by `rupcxx_explore::explore`
//! starting from the bug-agnostic canonical schedule, and each found
//! bug's minimized schedule must replay the same verdict.
//!
//! The `smoke_` tests are the `make explore-smoke` CI subset: a bounded
//! exhaustive run over two corpus bugs plus a clean benchmark.

use rupcxx_apps::{gups, sample_sort, stencil};
use rupcxx_explore::corpus::{self, config_for, find};
use rupcxx_explore::{explore, run_schedule, ExploreConfig, Program};
use rupcxx_net::Schedule;

/// Explore one corpus entry and check the contract: the expected finding
/// kind is surfaced, and the minimized schedule reproduces it.
fn assert_entry_found(name: &str) {
    let e = find(name);
    let cfg = config_for(e);
    let ex = explore(&cfg, &e.make);
    let bug = ex.bug_with(e.expect).unwrap_or_else(|| {
        panic!(
            "{name}: exploration ({} schedules) never surfaced {:?}; found {:?}",
            ex.explored,
            e.expect,
            ex.bugs
                .iter()
                .map(|b| b.verdict.clone())
                .collect::<Vec<_>>()
        )
    });
    if e.schedule_dependent {
        assert!(
            !bug.minimized.is_empty(),
            "{name}: a schedule-dependent bug cannot minimize to the \
             canonical order"
        );
    } else {
        assert_eq!(
            bug.minimized,
            vec![],
            "{name}: the PR-4 corpus manifests on the canonical order, so \
             the minimal schedule is empty"
        );
    }
    // The minimized schedule replays to (at least) the same verdict.
    let replay = run_schedule(&cfg, bug.minimized_schedule(), &e.make);
    assert!(
        replay.verdict.contains(&e.expect),
        "{name}: minimized schedule {:?} lost the bug on replay: {:?}",
        bug.minimized,
        replay.verdict
    );
}

// Two corpus bugs in the smoke subset: one race, one deadlock-pass bug.
#[test]
fn smoke_explore_finds_race_put_vs_read() {
    assert_entry_found("race_put_vs_read");
}

#[test]
fn smoke_explore_finds_event_never_signaled() {
    assert_entry_found("event_never_signaled");
}

#[test]
fn explore_finds_race_write_write() {
    assert_entry_found("race_write_write");
}

#[test]
fn explore_finds_race_agg_put() {
    assert_entry_found("race_agg_put");
}

#[test]
fn explore_finds_lock_across_barrier() {
    assert_entry_found("lock_across_barrier");
}

#[test]
fn explore_finds_deadlock_abba() {
    assert_entry_found("deadlock_abba");
}

#[test]
fn explore_finds_deadlock_self_reacquire() {
    assert_entry_found("deadlock_self_reacquire");
}

#[test]
fn explore_finds_barrier_mismatch() {
    assert_entry_found("barrier_mismatch");
}

#[test]
fn explore_finds_order_sensitive_event() {
    assert_entry_found("order_sensitive_event");
}

/// The showcase bug is invisible to a single canonical run — only
/// exploration's reordering exposes it. (This is what separates the
/// model checker from plain checked execution.)
#[test]
fn order_sensitive_event_is_clean_on_canonical() {
    let e = find("order_sensitive_event");
    let out = run_schedule(&config_for(e), Schedule::canonical(), &e.make);
    assert!(
        out.verdict.is_empty(),
        "the canonical order must be clean, got {:?}",
        out.verdict
    );
    assert_eq!(out.results, Some(vec![1, 0, 0]));
}

// ---- the clean suite under exploration ----------------------------------
//
// Correctly synchronized benchmarks must stay finding-free on *every*
// explored schedule within the bound, not just the canonical one. The
// programs are large, so `max_schedules` keeps each test bounded; the
// point is that reordering concurrent deliveries never manufactures a
// finding.

fn assert_clean_everywhere(what: &str, cfg: &ExploreConfig, make: &dyn Fn() -> Program) {
    let ex = explore(cfg, make);
    assert!(
        ex.bugs.is_empty(),
        "{what}: exploration ({} schedules) reported findings: {:?}",
        ex.explored,
        ex.bugs
            .iter()
            .map(|b| b.verdict.clone())
            .collect::<Vec<_>>()
    );
    assert!(ex.explored >= 1);
}

fn gups_program() -> Program {
    Box::new(|ctx| {
        let out = gups::run(
            ctx,
            &gups::GupsConfig {
                table_size: 1 << 8,
                updates_per_rank: 200,
                variant: gups::Variant::Upcxx,
                verify: true,
            },
        );
        assert!(out.verified);
        out.updates as u64
    })
}

#[test]
fn smoke_clean_gups_under_exploration() {
    let mut cfg = ExploreConfig::new(2).max_schedules(4);
    cfg.segment_bytes = 1 << 20;
    assert_clean_everywhere("gups plain", &cfg, &gups_program);
}

#[test]
fn clean_gups_aggregated_under_exploration() {
    let mut cfg = ExploreConfig::new(2).max_schedules(4);
    cfg.segment_bytes = 1 << 20;
    cfg.agg_flush_count = Some(32);
    assert_clean_everywhere("gups aggregated", &cfg, &|| {
        Box::new(|ctx| {
            let out = gups::run(
                ctx,
                &gups::GupsConfig {
                    table_size: 1 << 8,
                    updates_per_rank: 200,
                    variant: gups::Variant::UpcxxAgg,
                    verify: true,
                },
            );
            assert!(out.verified);
            out.updates as u64
        })
    });
}

#[test]
fn clean_stencil_under_exploration() {
    let reference = stencil::serial_reference((8, 8, 4), 2, 0.1);
    let mut cfg = ExploreConfig::new(4).max_schedules(4);
    cfg.segment_bytes = 1 << 20;
    assert_clean_everywhere("stencil", &cfg, &move || {
        Box::new(move |ctx| {
            let out = stencil::run(
                ctx,
                &stencil::StencilConfig {
                    local_edge: 4,
                    grid: (2, 2, 1),
                    iters: 2,
                    variant: stencil::Variant::Optimized,
                    c: 0.1,
                },
            );
            assert!((out.checksum - reference).abs() < 1e-9);
            out.checksum.to_bits()
        })
    });
}

#[test]
fn clean_sample_sort_under_exploration() {
    let mut cfg = ExploreConfig::new(2).max_schedules(4);
    cfg.segment_bytes = 1 << 20;
    cfg.agg_flush_count = Some(32);
    assert_clean_everywhere("sample sort", &cfg, &|| {
        Box::new(|ctx| {
            let out = sample_sort::run(
                ctx,
                &sample_sort::SortConfig {
                    keys_per_rank: 500,
                    oversample: 16,
                    variant: sample_sort::Variant::UpcxxAgg,
                    seed: 7,
                },
            );
            assert!(out.verified);
            out.my_keys as u64
        })
    });
}

// ---- regression-schedule regeneration -----------------------------------

/// Regenerate the committed `tests/schedules/*.sched` files from a fresh
/// exploration of every corpus entry. Ignored in normal runs (the
/// committed files are the regression artifact `explore_replay.rs`
/// verifies); run explicitly after corpus changes:
/// `cargo test --test explore_corpus regen_schedules -- --ignored`
#[test]
#[ignore = "writes tests/schedules/*.sched; run manually after corpus changes"]
fn regen_schedules() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/schedules");
    std::fs::create_dir_all(dir).unwrap();
    for e in corpus::ENTRIES {
        let cfg = config_for(e);
        let ex = explore(&cfg, &e.make);
        let bug = ex
            .bug_with(e.expect)
            .unwrap_or_else(|| panic!("{}: bug not found", e.name));
        let text = bug.minimized_schedule().to_text();
        let path = format!("{dir}/{}.sched", e.name);
        std::fs::write(&path, &text).unwrap();
        println!(
            "{}: explored {} schedules, minimized {} -> {} picks, wrote {path}",
            e.name,
            ex.explored,
            bug.picks.len(),
            bug.minimized.len()
        );
    }
}
