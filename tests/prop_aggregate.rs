//! Property tests of the per-destination aggregation layer (proptest):
//! for an arbitrary bidirectional schedule mixing buffered fine-grained
//! ops (handler AMs, xor/add words, small puts) with direct active
//! messages, an aggregated fabric delivers exactly the same handler
//! sequence per rank and ends with exactly the same segment contents as
//! an unaggregated fabric — including under drop/dup fault injection,
//! where each batch is one sequenced reliable frame. Failing schedules
//! are shrunk with `shrink_vec` to a 1-minimal counterexample.

use rupcxx_net::{
    AggConfig, AmPayload, BatchReader, Fabric, FabricConfig, FaultPlan, Frame, GlobalAddr,
};
use rupcxx_trace::TraceConfig;
use rupcxx_util::prop as proptest;
use rupcxx_util::prop::prelude::*;
use rupcxx_util::Bytes;
use std::sync::Arc;

/// Words of segment state the schedule may touch, per rank.
const WORDS: usize = 32;

/// One schedule entry: `reverse` selects the 1→0 direction, `kind`
/// selects the operation, `x`/`y` parameterize it.
type Op = (bool, u8, u16, u16);

fn fabric(agg: Option<AggConfig>, faults: Option<FaultPlan>) -> Arc<Fabric> {
    Fabric::new(FabricConfig {
        ranks: 2,
        segment_bytes: WORDS * 8,
        simnet: None,
        trace: TraceConfig::off(),
        faults,
        agg,
        check: None,
        cache: None,
        prof: None,
        schedule: None,
        remote: None,
    })
}

/// Issue one schedule entry on `f`.
fn issue(f: &Fabric, &(reverse, kind, x, y): &Op) {
    let (src, dst) = if reverse { (1, 0) } else { (0, 1) };
    let addr = GlobalAddr::new(dst, (x as usize % WORDS) * 8);
    let value = y as u64 + 1;
    match kind % 5 {
        0 => f.am_buffered(src, dst, x, &y.to_le_bytes()),
        1 => f.xor_u64_buffered(src, addr, value),
        2 => f.add_u64_buffered(src, addr, value),
        3 => f.put_buffered(src, addr, &value.to_le_bytes()),
        // Direct AM interleaved with buffered traffic: must flush the
        // destination's buffer first to preserve per-link order.
        _ => f.send_am(
            src,
            dst,
            AmPayload::Handler {
                id: x,
                args: Bytes::copy_from_slice(&y.to_le_bytes()),
            },
        ),
    }
}

/// Pump + drain `me` until quiescent, recording handler ids in delivery
/// order (batched handler frames unpacked in place, RMA frames applied).
/// `None` on a hang or a fabric failure.
fn drain_rank(f: &Fabric, me: usize) -> Option<Vec<u16>> {
    let mut got = Vec::new();
    for _ in 0..100_000 {
        f.pump_incoming(me);
        for m in f.endpoint(me).drain() {
            let (src, clock) = (m.src, m.clock);
            match m.payload {
                AmPayload::Handler { id, .. } => got.push(id),
                AmPayload::Batch { frames, .. } => {
                    for frame in BatchReader::new(&frames) {
                        if let Frame::Handler { id, .. } = frame {
                            got.push(id);
                        } else {
                            f.apply_frame(me, src, clock.as_ref(), &frame);
                        }
                    }
                }
                AmPayload::Task(_) => unreachable!("no tasks in this schedule"),
            }
        }
        if f.has_failed() {
            return None;
        }
        if f.links_quiescent(me) && f.endpoint(me).pending() == 0 {
            return Some(got);
        }
    }
    None
}

/// Run `sched` on `f`: issue every op, flush, drain both ranks. Returns
/// the per-rank handler sequences and both segments' word contents.
#[allow(clippy::type_complexity)]
fn run(f: &Fabric, sched: &[Op]) -> Option<([Vec<u16>; 2], [Vec<u64>; 2])> {
    for op in sched {
        issue(f, op);
    }
    f.flush_agg(0);
    f.flush_agg(1);
    let (got0, got1) = (drain_rank(f, 0)?, drain_rank(f, 1)?);
    let words = |rank: usize| -> Vec<u64> {
        (0..WORDS)
            .map(|w| f.get_u64(rank, GlobalAddr::new(rank, w * 8)))
            .collect()
    };
    Some(([got0, got1], [words(0), words(1)]))
}

/// The property: the aggregated fabric delivers the same handler
/// sequences and produces the same segment state as the unaggregated
/// one, and actually batched something when the schedule had enough
/// buffered ops to overflow a threshold.
fn aggregation_is_transparent(agg: &AggConfig, faults: Option<&FaultPlan>, sched: &[Op]) -> bool {
    let plain = fabric(None, faults.cloned());
    let batched = fabric(Some(agg.clone()), faults.cloned());
    let (Some(p), Some(b)) = (run(&plain, sched), run(&batched, sched)) else {
        return false;
    };
    p == b
}

/// Check the property; on failure, shrink the schedule to a 1-minimal
/// counterexample and panic with a reproducible report.
fn check_or_shrink(agg: AggConfig, faults: Option<FaultPlan>, sched: Vec<Op>) {
    if aggregation_is_transparent(&agg, faults.as_ref(), &sched) {
        return;
    }
    let original_len = sched.len();
    let minimal = proptest::shrink_vec(sched, |s| {
        !aggregation_is_transparent(&agg, faults.as_ref(), s)
    });
    panic!(
        "aggregated delivery diverged under {agg:?} / {faults:?}; \
         minimal failing schedule ({} of {} ops): {minimal:?}",
        minimal.len(),
        original_len,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn aggregated_delivery_equals_unaggregated(
        flush_count in 1usize..12,
        flush_bytes in 32usize..256,
        sched in proptest::collection::vec(
            (any::<bool>(), any::<u8>(), 0u16..512, 0u16..512), 1..80),
    ) {
        let agg = AggConfig::new().flush_count(flush_count).flush_bytes(flush_bytes);
        check_or_shrink(agg, None, sched);
    }

    #[test]
    fn aggregated_delivery_survives_drop_and_dup(
        seed in 0u64..1_000_000,
        drop_ppm in 0u32..300_000,
        dup_ppm in 0u32..200_000,
        flush_count in 1usize..12,
        sched in proptest::collection::vec(
            (any::<bool>(), any::<u8>(), 0u16..512, 0u16..512), 1..60),
    ) {
        let agg = AggConfig::new().flush_count(flush_count);
        let plan = FaultPlan::new(seed)
            .drop(drop_ppm as f64 / 1e6)
            .dup(dup_ppm as f64 / 1e6);
        check_or_shrink(agg, Some(plan), sched);
    }
}

/// Guard against a property that silently never fails: a healthy
/// all-buffered schedule must pass, and the batched fabric must have
/// coalesced it into strictly fewer wire frames than logical ops.
#[test]
fn batching_actually_batches() {
    let agg = AggConfig::new().flush_count(8);
    let sched: Vec<Op> = (0..64)
        .map(|i| (i % 3 == 0, (i % 4) as u8, i as u16, (i * 7) as u16))
        .collect();
    assert!(aggregation_is_transparent(&agg, None, &sched));
    let f = fabric(Some(agg), None);
    let _ = run(&f, &sched).expect("clean run");
    let c = f.total_counts();
    assert!(c.agg_batches > 0, "{c:?}");
    assert!(c.agg_ops > c.agg_batches, "{c:?}");
    assert_eq!(c.agg_ops, 64, "every op in this schedule is buffered");
}
