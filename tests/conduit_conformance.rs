//! Cross-conduit conformance suite.
//!
//! The layering claim of the conduit subsystem is that everything above
//! the transport — reliable delivery, fault injection, aggregation,
//! caching, the checker, the profiler — behaves identically whether
//! ranks are threads of one process (loopback) or OS processes over
//! shm/tcp/uds. These tests launch the `conduit_app` workload binary as
//! real processes and compare its deterministic `RESULT` lines
//! bit-for-bit against the in-process run.
//!
//! The `smoke_` tests are the CI gate (`make conduit-smoke`).

use std::collections::BTreeMap;
use std::io::Read;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const APP: &str = env!("CARGO_BIN_EXE_conduit_app");
const LAUNCH: &str = env!("CARGO_BIN_EXE_rupcxx-launch");

/// Unique-enough scratch name: pid + a per-process counter.
fn scratch(tag: &str) -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    format!(
        "{}/rupcxx-conf-{tag}-{}-{n}",
        std::env::temp_dir().display(),
        std::process::id()
    )
}

struct Run {
    status: std::process::ExitStatus,
    stdout: String,
    stderr: String,
}

/// Run a command to completion with a hard timeout (kills on expiry),
/// capturing both streams without deadlocking on full pipes.
fn run_with_timeout(cmd: &mut Command, timeout: Duration) -> Run {
    let mut child = cmd
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    let mut out_pipe = child.stdout.take().unwrap();
    let mut err_pipe = child.stderr.take().unwrap();
    let out_thread = std::thread::spawn(move || {
        let mut s = String::new();
        let _ = out_pipe.read_to_string(&mut s);
        s
    });
    let err_thread = std::thread::spawn(move || {
        let mut s = String::new();
        let _ = err_pipe.read_to_string(&mut s);
        s
    });
    let deadline = Instant::now() + timeout;
    let status = loop {
        match child.try_wait().expect("wait") {
            Some(s) => break s,
            None if Instant::now() > deadline => {
                let _ = child.kill();
                let s = child.wait().expect("wait after kill");
                let stdout = out_thread.join().unwrap();
                let stderr = err_thread.join().unwrap();
                panic!(
                    "timed out after {timeout:?}\n--- stdout\n{stdout}\n--- stderr\n{stderr}\n{s}"
                );
            }
            None => std::thread::sleep(Duration::from_millis(5)),
        }
    };
    Run {
        status,
        stdout: out_thread.join().unwrap(),
        stderr: err_thread.join().unwrap(),
    }
}

/// Launch `conduit_app mode ranks args...` over `conduit` (None =
/// in-process loopback) and return its rank→checksum map.
fn checksums(
    conduit: Option<&str>,
    mode: &str,
    ranks: usize,
    args: &[&str],
    extra_env: &[(&str, &str)],
) -> BTreeMap<usize, String> {
    let mut cmd = Command::new(APP);
    cmd.arg(mode).arg(ranks.to_string()).args(args);
    // The test runner's environment must not leak a conduit or fault
    // plan into the jobs this suite parameterizes itself.
    cmd.env_remove("RUPCXX_CONDUIT")
        .env_remove("RUPCXX_PROC_RANK");
    if let Some(sel) = conduit {
        cmd.env("RUPCXX_CONDUIT", sel);
    }
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    let run = run_with_timeout(&mut cmd, Duration::from_secs(120));
    assert!(
        run.status.success(),
        "conduit_app {mode} over {conduit:?} failed: {}\n--- stdout\n{}\n--- stderr\n{}",
        run.status,
        run.stdout,
        run.stderr
    );
    let mut sums = BTreeMap::new();
    for line in run.stdout.lines() {
        if let Some(rest) = line.strip_prefix("RESULT rank=") {
            let (rank, sum) = rest.split_once(" checksum=").expect("RESULT line");
            sums.insert(rank.parse().unwrap(), sum.to_string());
        }
    }
    assert_eq!(
        sums.len(),
        ranks,
        "expected one RESULT per rank over {conduit:?}:\n{}",
        run.stdout
    );
    sums
}

fn assert_same_as_loopback(mode: &str, ranks: usize, args: &[&str], conduit: &str) {
    let reference = checksums(None, mode, ranks, args, &[]);
    let got = checksums(Some(conduit), mode, ranks, args, &[]);
    assert_eq!(
        reference, got,
        "{mode} over {conduit} diverged from loopback"
    );
}

// ---- CI smoke gate (fast; `make conduit-smoke` filters on `smoke_`) ----

#[test]
fn smoke_shm_gups_2proc() {
    let seg = scratch("shm-smoke");
    assert_same_as_loopback(
        "gups",
        2,
        &["updates=300", "table=1024"],
        &format!("shm:{seg}.seg"),
    );
    let _ = std::fs::remove_file(format!("{seg}.seg"));
}

#[test]
fn smoke_uds_gups_2proc() {
    let dir = scratch("uds-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    assert_same_as_loopback(
        "gups",
        2,
        &["updates=300", "table=1024"],
        &format!("uds:{dir}"),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- Full conformance ----

#[test]
fn uds_sample_sort_matches_loopback_4proc() {
    let dir = scratch("uds-sort");
    std::fs::create_dir_all(&dir).unwrap();
    assert_same_as_loopback("sort", 4, &["keys=800", "seed=9"], &format!("uds:{dir}"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tcp_gups_matches_loopback() {
    // Derive the port from the pid so parallel test runs don't collide.
    let port = 20000 + (std::process::id() % 20000) as u16;
    assert_same_as_loopback(
        "gups",
        2,
        &["updates=300", "table=1024"],
        &format!("tcp:127.0.0.1:{port}"),
    );
}

#[test]
fn shm_stencil_4proc_matches_loopback() {
    let seg = scratch("shm-stencil");
    assert_same_as_loopback(
        "stencil",
        4,
        &["edge=8", "iters=3", "grid=2x2x1"],
        &format!("shm:{seg}.seg"),
    );
    let _ = std::fs::remove_file(format!("{seg}.seg"));
}

#[test]
fn shm_aggregated_gups_matches_loopback() {
    // The aggregation layer sits above the conduit: coalesced batches
    // cross the wire as one frame and unpack identically.
    let seg = scratch("shm-agg");
    assert_same_as_loopback(
        "gups-agg",
        2,
        &["updates=400", "table=1024"],
        &format!("shm:{seg}.seg"),
    );
    let _ = std::fs::remove_file(format!("{seg}.seg"));
}

#[test]
fn chaos_seed_reproducible_over_shm() {
    // Fault injection rides above the conduit: the same seed produces
    // the same retransmission history and the same final answer, in
    // processes exactly as in threads.
    let faults = ("RUPCXX_FAULTS", "seed=7,drop=0.05,dup=0.02,delay=0.05");
    let reference = checksums(None, "gups", 2, &["updates=200", "table=1024"], &[faults]);
    for round in 0..2 {
        let seg = scratch(&format!("shm-chaos-{round}"));
        let got = checksums(
            Some(&format!("shm:{seg}.seg")),
            "gups",
            2,
            &["updates=200", "table=1024"],
            &[faults],
        );
        assert_eq!(reference, got, "chaos round {round} diverged");
        let _ = std::fs::remove_file(format!("{seg}.seg"));
    }
}

#[test]
fn killing_a_process_yields_peer_unreachable() {
    // Kill a real OS process mid-job: the survivors must die with a
    // classified PeerUnreachable through the wait_until panic funnel —
    // flight recorder dumped — rather than hanging in the barrier.
    let dir = scratch("uds-kill");
    std::fs::create_dir_all(&dir).unwrap();
    let mut cmd = Command::new(LAUNCH);
    cmd.args([
        "-n",
        "3",
        "-c",
        &format!("uds:{dir}"),
        "--kill-rank",
        "1",
        "--kill-after-ms",
        "300",
        "--",
        APP,
        "spin",
        "3",
        "iters=100000",
        "sleep_ms=5",
    ]);
    cmd.env("RUPCXX_PROF", "1").env_remove("RUPCXX_CONDUIT");
    let run = run_with_timeout(&mut cmd, Duration::from_secs(90));
    assert!(
        !run.status.success(),
        "launcher must report the killed job as failed"
    );
    let all = format!("{}\n{}", run.stdout, run.stderr);
    assert!(
        all.contains("unreachable"),
        "survivors must classify the dead peer:\n{all}"
    );
    assert!(
        all.contains("rupcxx flight recorder"),
        "profiler must dump the flight recorder on the failure:\n{all}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- Trait-level contract, all three backends in-process ----

#[test]
fn trait_contract_exactly_once_in_order() {
    use rupcxx_net::{Conduit, ConduitEvent, LoopbackConduit, ShmConduit, SocketConduit};

    fn exercise(mesh: Vec<Box<dyn Conduit>>, name: &str) {
        let n = mesh.len();
        // Every rank sends 50 sequenced frames to every other rank.
        for (src, c) in mesh.iter().enumerate() {
            for dst in 0..n {
                if dst == src {
                    continue;
                }
                for seq in 0..50u32 {
                    let mut frame = vec![src as u8, dst as u8];
                    frame.extend_from_slice(&seq.to_le_bytes());
                    c.send(dst, &frame);
                }
            }
        }
        for c in &mesh {
            for dst in 0..n {
                if dst != c.my_rank() {
                    c.flush(dst);
                }
            }
        }
        // Each receiver sees exactly 50 frames per source, in order.
        for (me, c) in mesh.iter().enumerate() {
            let mut next = vec![0u32; n];
            let mut got = 0;
            let deadline = Instant::now() + Duration::from_secs(30);
            while got < 50 * (n - 1) {
                match c.try_recv() {
                    Some(ConduitEvent::Frame(src, frame)) => {
                        assert_eq!(frame[0] as usize, src, "{name}: src tag");
                        assert_eq!(frame[1] as usize, me, "{name}: dst tag");
                        let seq = u32::from_le_bytes(frame[2..6].try_into().unwrap());
                        assert_eq!(seq, next[src], "{name}: out of order from {src}");
                        next[src] += 1;
                        got += 1;
                    }
                    Some(ConduitEvent::Closed(src)) => {
                        panic!("{name}: premature Closed({src})")
                    }
                    None => {
                        assert!(Instant::now() < deadline, "{name}: stalled at {got}");
                        std::thread::yield_now();
                    }
                }
            }
            assert!(c.try_recv().is_none(), "{name}: extra delivery");
        }
        for c in &mesh {
            c.shutdown();
        }
    }

    exercise(
        LoopbackConduit::mesh(3)
            .into_iter()
            .map(|c| Box::new(c) as Box<dyn Conduit>)
            .collect(),
        "loopback",
    );

    let seg = format!("{}.seg", scratch("trait-shm"));
    let shm: Vec<Box<dyn Conduit>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|r| {
                let seg = seg.clone();
                s.spawn(move || Box::new(ShmConduit::attach(&seg, r, 3)) as Box<dyn Conduit>)
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    exercise(shm, "shm");
    let _ = std::fs::remove_file(&seg);

    let dir = scratch("trait-uds");
    std::fs::create_dir_all(&dir).unwrap();
    let uds: Vec<Box<dyn Conduit>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|r| {
                let dir = dir.clone();
                s.spawn(move || Box::new(SocketConduit::uds(&dir, r, 3)) as Box<dyn Conduit>)
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    exercise(uds, "uds");
    let _ = std::fs::remove_dir_all(&dir);
}
