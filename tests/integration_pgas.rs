//! Cross-crate integration tests: the public PGAS API exercised the way
//! the paper's applications use it.

use rupcxx::prelude::*;
use rupcxx_ndarray::{pt, NdArray, Point, RectDomain};

fn cfg(n: usize) -> RuntimeConfig {
    RuntimeConfig::new(n).segment_mib(8)
}

#[test]
fn shared_array_of_ndarray_descriptors_directory_pattern() {
    // The paper's §III-E composition: shared_array<ndarray<T,3>> dir(THREADS);
    // dir[MYTHREAD] = ARRAY(...)
    spmd(cfg(4), |ctx| {
        let dir = SharedArray::<NdArray<f64, 3>>::new(ctx, ctx.ranks(), 1);
        let me = ctx.rank() as i64;
        let dom = RectDomain::new(pt![me * 4, 0, 0], pt![me * 4 + 4, 4, 4]);
        let mine = NdArray::<f64, 3>::new(ctx, dom);
        mine.fill_with(ctx, |p| (p[0] * 100 + p[1] * 10 + p[2]) as f64);
        dir.write(ctx, ctx.rank(), mine);
        ctx.barrier();
        // Read a neighbour's grid through the directory, one-sided.
        let next = (ctx.rank() + 1) % ctx.ranks();
        let theirs = dir.read(ctx, next);
        assert_eq!(theirs.owner(), next);
        let base = next as i64 * 4;
        assert_eq!(
            theirs.get(ctx, pt![base + 2, 1, 3]),
            ((base + 2) * 100 + 13) as f64
        );
        ctx.barrier();
        mine.destroy(ctx);
        dir.destroy(ctx);
    });
}

#[test]
fn async_copy_between_shared_arrays_and_ndarrays() {
    spmd(cfg(2), |ctx| {
        // Move a whole SharedArray block into a remote NdArray row.
        let sa = SharedArray::<f64>::new(ctx, 16, 8);
        for i in sa.my_indices(ctx).collect::<Vec<_>>() {
            sa.write(ctx, i, i as f64);
        }
        ctx.barrier();
        if ctx.rank() == 0 {
            let dst = allocate::<f64>(ctx, 1, 8).expect("landing");
            let ev = Event::new();
            async_copy(ctx, sa.base_of(1), dst, 8, Some(&ev));
            ev.wait(ctx);
            async_copy_fence(ctx);
            let mut out = vec![0.0; 8];
            dst.rget_slice(ctx, &mut out);
            // Rank 1 owns block [8, 16).
            assert_eq!(out, (8..16).map(|i| i as f64).collect::<Vec<_>>());
            deallocate(ctx, dst);
        }
        ctx.barrier();
        sa.destroy(ctx);
    });
}

#[test]
fn finish_with_nested_asyncs_and_futures() {
    let sums = spmd(cfg(4), |ctx| {
        if ctx.rank() != 0 {
            return 0u64;
        }
        ctx.finish(|fs| {
            let futures: Vec<RtFuture<u64>> = (0..ctx.ranks())
                .map(|r| fs.spawn_with_result(r, move |tctx| (tctx.rank() as u64 + 1) * 10))
                .collect();
            futures.into_iter().map(|f| f.get(ctx)).sum()
        })
    });
    assert_eq!(sums[0], 10 + 20 + 30 + 40);
}

#[test]
fn global_lock_protects_shared_counter() {
    spmd(cfg(4), |ctx| {
        let counter = SharedVar::<u64>::new(ctx, 0);
        let lock = if ctx.rank() == 0 {
            let l = GlobalLock::new(ctx, 0);
            ctx.broadcast(0, [l.addr().rank() as u64, l.addr().offset() as u64])
        } else {
            ctx.broadcast(0, [0u64, 0u64])
        };
        let lock = GlobalLock::from_addr(GlobalAddr::new(lock[0] as usize, lock[1] as usize));
        for _ in 0..50 {
            lock.with(ctx, || {
                let v = counter.read(ctx);
                counter.write(ctx, v + 1);
            });
        }
        ctx.barrier();
        assert_eq!(counter.read(ctx), 200);
        counter.destroy(ctx);
    });
}

#[test]
fn ghost_exchange_all_six_faces_2x2x2() {
    spmd(cfg(8), |ctx| {
        let me = ctx.rank() as i64;
        let (cx, cy, cz) = (me % 2, (me / 2) % 2, me / 4);
        let e = 4i64;
        let lo = pt![cx * e, cy * e, cz * e];
        let interior = RectDomain::new(lo, lo + Point::splat(e));
        let halo = RectDomain::new(lo - Point::ones(), lo + Point::splat(e + 1));
        let grid = NdArray::<f64, 3>::new(ctx, halo);
        grid.fill(ctx, -1.0);
        grid.restrict(interior)
            .fill_with(ctx, |p| (p[0] * 100 + p[1] * 10 + p[2]) as f64);
        let dirs: Vec<NdArray<f64, 3>> = ctx.allgatherv(&[grid]);
        ctx.barrier();
        let coords = [cx, cy, cz];
        for dim in 0..3usize {
            for side in [-1i8, 1i8] {
                let mut nc = [cx, cy, cz];
                nc[dim] += side as i64;
                if !(0..2).contains(&nc[dim]) {
                    continue;
                }
                let nb = (nc[0] + nc[1] * 2 + nc[2] * 4) as usize;
                grid.copy_ghost_from(ctx, &dirs[nb], interior, dim, side, 1);
            }
        }
        ctx.barrier();
        // Check one ghost value per present face.
        for dim in 0..3usize {
            for side in [-1i8, 1i8] {
                let mut nc = coords;
                nc[dim] += side as i64;
                if !(0..2).contains(&nc[dim]) {
                    continue;
                }
                // A point in the middle of that ghost face.
                let mut p = lo + Point::splat(e / 2);
                p[dim] = if side < 0 { lo[dim] - 1 } else { lo[dim] + e };
                let expect = (p[0] * 100 + p[1] * 10 + p[2]) as f64;
                assert_eq!(grid.get(ctx, p), expect, "dim {dim} side {side}");
            }
        }
        ctx.barrier();
        grid.destroy(ctx);
    });
}

#[test]
fn two_sided_and_one_sided_interoperate() {
    // The same job can mix MPI-style messaging with PGAS one-sided ops —
    // the paper's interoperability story.
    let world = rupcxx_mpi::MpiWorld::new(2);
    spmd(cfg(2), move |ctx| {
        let comm = world.comm(ctx);
        let v = SharedVar::<u64>::new(ctx, 5);
        if ctx.rank() == 0 {
            comm.send(1, 1, &[9]);
            ctx.barrier();
            assert_eq!(v.read(ctx), 9 * 5);
        } else {
            let (_, data) = comm.recv(0, 1);
            let factor = data[0] as u64;
            let old = v.read(ctx);
            v.write(ctx, old * factor);
            ctx.barrier();
        }
        ctx.barrier();
        v.destroy(ctx);
    });
}
