//! Conformance workload driver for the transport conduits.
//!
//! Runs one of the paper's benchmarks under `spmd_procs`, so the same
//! invocation works in-process (no `RUPCXX_CONDUIT`), as the launcher
//! parent (conduit set, forks itself N times), or as one rank of a
//! multi-process job (`RUPCXX_PROC_RANK` set by the launcher).
//!
//! Usage: `conduit_app <gups|gups-agg|sort|stencil|spin> <ranks> [k=v...]`
//!
//! Every rank prints a deterministic `RESULT rank=R checksum=X` line;
//! the conformance suite compares these bit-for-bit across conduits.
//! Keys: `updates`, `table` (gups), `keys`, `seed` (sort), `edge`,
//! `iters`, `grid=XxYxZ` (stencil), `iters`, `sleep_ms` (spin),
//! `segment_mib` (all).

use rupcxx_apps::{gups, sample_sort, stencil};
use rupcxx_net::AggConfig;
use rupcxx_runtime::{spmd_procs, Ctx, HandlerRegistry, ProcOutcome, RuntimeConfig};
use std::collections::HashMap;

fn usage() -> ! {
    eprintln!("usage: conduit_app <gups|gups-agg|sort|stencil|spin> <ranks> [k=v...]");
    std::process::exit(2);
}

fn parse_kv(args: &[String]) -> HashMap<String, String> {
    let mut kv = HashMap::new();
    for a in args {
        match a.split_once('=') {
            Some((k, v)) => {
                kv.insert(k.to_string(), v.to_string());
            }
            None => {
                eprintln!("bad parameter {a:?} (want k=v)");
                usage();
            }
        }
    }
    kv
}

fn get(kv: &HashMap<String, String>, key: &str, default: usize) -> usize {
    kv.get(key).map_or(default, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("{key}={v}: not a number"))
    })
}

/// Checksum of one rank's run: every workload reduces to a u64 that is
/// identical across ranks and (the conformance property) across conduits.
fn run_workload(ctx: &Ctx, mode: &str, kv: &HashMap<String, String>) -> u64 {
    match mode {
        "gups" | "gups-agg" => {
            let cfg = gups::GupsConfig {
                table_size: get(kv, "table", 1 << 12),
                updates_per_rank: get(kv, "updates", 2000),
                variant: if mode == "gups-agg" {
                    gups::Variant::UpcxxAgg
                } else {
                    gups::Variant::Upcxx
                },
                verify: true,
            };
            let r = gups::run(ctx, &cfg);
            assert!(r.verified, "gups verification failed");
            r.checksum
        }
        "sort" => {
            let cfg = sample_sort::SortConfig {
                keys_per_rank: get(kv, "keys", 2000),
                oversample: 32,
                variant: sample_sort::Variant::Upcxx,
                seed: get(kv, "seed", 42) as u64,
            };
            let r = sample_sort::run(ctx, &cfg);
            assert!(r.verified, "sort verification failed");
            r.checksum
        }
        "stencil" => {
            let grid = kv.get("grid").map_or((ctx.ranks(), 1, 1), |g| {
                let d: Vec<usize> = g.split('x').map(|s| s.parse().unwrap()).collect();
                assert_eq!(d.len(), 3, "grid=XxYxZ");
                (d[0], d[1], d[2])
            });
            let cfg = stencil::StencilConfig {
                local_edge: get(kv, "edge", 16),
                grid,
                iters: get(kv, "iters", 4),
                variant: stencil::Variant::Optimized,
                c: 0.5,
            };
            // Bit-for-bit: the f64 checksum is compared by its bits.
            stencil::run(ctx, &cfg).checksum.to_bits()
        }
        "spin" => {
            // Kill-test workload: barrier rounds with real wall time in
            // between, so a launcher (or test) can kill one OS process
            // mid-job and the survivors' barriers must surface
            // PeerUnreachable instead of spinning forever.
            let iters = get(kv, "iters", 2000);
            let sleep_ms = get(kv, "sleep_ms", 5);
            for _ in 0..iters {
                std::thread::sleep(std::time::Duration::from_millis(sleep_ms as u64));
                ctx.barrier();
            }
            0
        }
        other => {
            eprintln!("unknown mode {other:?}");
            usage();
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let mode = args[0].clone();
    let ranks: usize = args[1].parse().unwrap_or_else(|_| usage());
    let kv = parse_kv(&args[2..]);
    let mut config = RuntimeConfig::new(ranks).segment_mib(get(&kv, "segment_mib", 4));
    if mode == "gups-agg" && config.agg.is_none() {
        config = config.with_agg(AggConfig::new().flush_count(64));
    }
    let outcome = spmd_procs(config, HandlerRegistry::new(), |ctx| {
        let sum = run_workload(ctx, &mode, &kv);
        (ctx.rank(), sum)
    });
    match outcome {
        ProcOutcome::InProcess(results) => {
            for (rank, sum) in results {
                println!("RESULT rank={rank} checksum={sum:016x}");
            }
        }
        ProcOutcome::Rank(_, (rank, sum)) => {
            println!("RESULT rank={rank} checksum={sum:016x}");
        }
        ProcOutcome::Launcher(statuses) => {
            for (rank, s) in statuses.iter().enumerate() {
                if !s.success() {
                    eprintln!("rank {rank} failed: {s}");
                }
            }
            if !statuses.iter().all(|s| s.success()) {
                std::process::exit(1);
            }
        }
    }
}
