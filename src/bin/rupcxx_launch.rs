//! `rupcxx-launch` — external multi-process SPMD launcher.
//!
//! Spawns `-n N` copies of a program, one OS process per rank, wired
//! together by a transport conduit: each child gets `RUPCXX_PROC_RANK=r`
//! and `RUPCXX_CONDUIT=<sel>` in its environment, which any program
//! built on `spmd_procs` recognizes (it skips its own fork step and runs
//! straight as rank `r`).
//!
//! Usage:
//!   rupcxx-launch -n N [-c CONDUIT] [--kill-rank K --kill-after-ms T] -- prog args...
//!
//! `-c` defaults to the `RUPCXX_CONDUIT` environment variable. The
//! `--kill-rank` pair is the chaos knob: SIGKILL rank K after T
//! milliseconds, then verify the survivors die with `PeerUnreachable`
//! instead of hanging (they are killed after a grace period otherwise,
//! and the launcher exits non-zero either way).

use rupcxx_net::{ConduitSel, CONDUIT_SYNTAX};
use std::process::Command;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: rupcxx-launch -n N [-c {CONDUIT_SYNTAX}] \
         [--kill-rank K --kill-after-ms T] -- prog args..."
    );
    std::process::exit(2);
}

struct Opts {
    ranks: usize,
    conduit: ConduitSel,
    kill_rank: Option<usize>,
    kill_after: Duration,
    prog: Vec<String>,
}

fn parse_args() -> Opts {
    let mut args = std::env::args().skip(1);
    let (mut ranks, mut conduit, mut kill_rank) = (None, None, None);
    let mut kill_after = Duration::from_millis(200);
    let mut prog = Vec::new();
    while let Some(a) = args.next() {
        let mut need = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "-n" => ranks = Some(need("-n").parse().expect("-n: not a number")),
            "-c" => match ConduitSel::parse(&need("-c")) {
                Ok(sel) => conduit = sel,
                Err(e) => panic!("-c: {e}"),
            },
            "--kill-rank" => {
                kill_rank = Some(
                    need("--kill-rank")
                        .parse()
                        .expect("--kill-rank: not a rank"),
                )
            }
            "--kill-after-ms" => {
                kill_after = Duration::from_millis(
                    need("--kill-after-ms")
                        .parse()
                        .expect("--kill-after-ms: not a number"),
                )
            }
            "--" => {
                prog = args.collect();
                break;
            }
            _ => usage(),
        }
    }
    let Some(ranks) = ranks else { usage() };
    if prog.is_empty() {
        usage();
    }
    let conduit = conduit
        .or_else(ConduitSel::from_env)
        .unwrap_or_else(|| panic!("no conduit: pass -c or set RUPCXX_CONDUIT"));
    Opts {
        ranks,
        conduit,
        kill_rank,
        kill_after,
        prog,
    }
}

fn main() {
    let opts = parse_args();
    if let Some(k) = opts.kill_rank {
        assert!(k < opts.ranks, "--kill-rank {k} out of range");
    }
    let mut children = Vec::with_capacity(opts.ranks);
    for rank in 0..opts.ranks {
        let child = Command::new(&opts.prog[0])
            .args(&opts.prog[1..])
            .env("RUPCXX_PROC_RANK", rank.to_string())
            .env("RUPCXX_CONDUIT", opts.conduit.to_string())
            .spawn()
            .unwrap_or_else(|e| panic!("spawn rank {rank} ({}): {e}", opts.prog[0]));
        children.push((rank, child, None));
    }
    let start = Instant::now();
    let mut killed = false;
    let mut trouble_at: Option<Instant> = None;
    const GRACE: Duration = Duration::from_secs(30);
    loop {
        if let Some(k) = opts.kill_rank {
            if !killed && start.elapsed() >= opts.kill_after {
                eprintln!("rupcxx-launch: killing rank {k} (chaos)");
                let _ = children[k].1.kill();
                killed = true;
                trouble_at = Some(Instant::now());
            }
        }
        let mut running = 0;
        for (rank, child, status) in children.iter_mut() {
            if status.is_some() {
                continue;
            }
            match child.try_wait() {
                Ok(Some(s)) => {
                    if !s.success() {
                        eprintln!("rupcxx-launch: rank {rank} exited with {s}");
                        trouble_at.get_or_insert_with(Instant::now);
                    }
                    *status = Some(s);
                }
                Ok(None) => running += 1,
                Err(e) => panic!("wait rank {rank}: {e}"),
            }
        }
        if running == 0 {
            break;
        }
        if let Some(t0) = trouble_at {
            if t0.elapsed() > GRACE {
                for (rank, child, status) in children.iter_mut() {
                    if status.is_none() {
                        eprintln!("rupcxx-launch: rank {rank} hung after peer death; killing");
                        let _ = child.kill();
                    }
                }
                trouble_at = None;
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let failures = children
        .iter()
        .filter(|(_, _, s)| !matches!(s, Some(st) if st.success()))
        .count();
    std::process::exit(if failures > 0 { 1 } else { 0 });
}
