//! Root crate: re-exports for integration tests and examples.
pub use rupcxx;
